#pragma once

// Procedural intensity scenes used to drive the DVS sensor model. Every
// scene can be rendered at an arbitrary time (continuous motion) and knows
// its dense ground-truth optical flow, which the accuracy experiments use
// to compute AEE-style metrics without recorded datasets.

#include <cstdint>
#include <memory>
#include <vector>

#include "events/dvs_sensor.hpp"
#include "events/event.hpp"

namespace evedge::events {

/// Dense 2-D flow field in pixels/second (row-major, size = width*height).
struct FlowField {
  int width = 0;
  int height = 0;
  std::vector<float> vx;
  std::vector<float> vy;
};

/// Continuous-time intensity scene.
class Scene {
 public:
  virtual ~Scene() = default;

  [[nodiscard]] virtual SensorGeometry geometry() const noexcept = 0;

  /// Renders the intensity image at time t (microseconds).
  [[nodiscard]] virtual IntensityFrame render(TimeUs t) const = 0;

  /// Dense ground-truth optical flow at time t, pixels/second.
  [[nodiscard]] virtual FlowField ground_truth_flow(TimeUs t) const = 0;
};

/// A band-limited random texture translating at constant velocity.
/// Ground-truth flow is uniform, making AEE trivially well-defined.
class TexturedTranslationScene final : public Scene {
 public:
  struct Params {
    SensorGeometry geometry{64, 48};
    double vx_px_per_s = 40.0;   ///< horizontal velocity
    double vy_px_per_s = 10.0;   ///< vertical velocity
    int harmonics = 4;           ///< number of sinusoid pairs in the texture
    double base_intensity = 0.5; ///< mean intensity (texture modulates it)
    double contrast = 0.45;      ///< texture amplitude
    std::uint64_t seed = 7;      ///< texture phase/frequency seed
  };

  explicit TexturedTranslationScene(const Params& params);

  [[nodiscard]] SensorGeometry geometry() const noexcept override {
    return params_.geometry;
  }
  [[nodiscard]] IntensityFrame render(TimeUs t) const override;
  [[nodiscard]] FlowField ground_truth_flow(TimeUs t) const override;

 private:
  struct Harmonic {
    double fx, fy;     ///< spatial frequency (cycles/pixel)
    double phase;
    double amplitude;
  };
  Params params_;
  std::vector<Harmonic> harmonics_;
};

/// A bright vertical bar sweeping horizontally across a dark background —
/// the classic high-contrast DVS stimulus. Flow is uniform horizontal.
class MovingBarScene final : public Scene {
 public:
  struct Params {
    SensorGeometry geometry{64, 48};
    double speed_px_per_s = 120.0;  ///< bar velocity (x direction)
    int bar_width_px = 4;
    double background = 0.08;
    double foreground = 0.95;
  };

  explicit MovingBarScene(const Params& params);

  [[nodiscard]] SensorGeometry geometry() const noexcept override {
    return params_.geometry;
  }
  [[nodiscard]] IntensityFrame render(TimeUs t) const override;
  [[nodiscard]] FlowField ground_truth_flow(TimeUs t) const override;

 private:
  Params params_;
};

/// N independent bright dots drifting with a shared velocity over a dark
/// background; sparse stimulus exercising low event density.
class DriftingDotsScene final : public Scene {
 public:
  struct Params {
    SensorGeometry geometry{64, 48};
    int dot_count = 12;
    double dot_radius_px = 1.5;
    double vx_px_per_s = 60.0;
    double vy_px_per_s = -25.0;
    double background = 0.05;
    double foreground = 0.9;
    std::uint64_t seed = 11;
  };

  explicit DriftingDotsScene(const Params& params);

  [[nodiscard]] SensorGeometry geometry() const noexcept override {
    return params_.geometry;
  }
  [[nodiscard]] IntensityFrame render(TimeUs t) const override;
  [[nodiscard]] FlowField ground_truth_flow(TimeUs t) const override;

 private:
  Params params_;
  std::vector<double> dot_x0_;
  std::vector<double> dot_y0_;
};

/// Renders `scene` at `fps_sim` frames/second over [t0, t0+duration) and
/// pushes every frame through a DVS sensor, returning the event stream.
[[nodiscard]] EventStream simulate_dvs(const Scene& scene, TimeUs t0,
                                       TimeUs duration_us, double fps_sim,
                                       const DvsConfig& dvs_config);

}  // namespace evedge::events
