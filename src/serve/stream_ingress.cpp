#include "serve/stream_ingress.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace evedge::serve {

namespace {

/// Drives one stream through E2SF + DSFA, invoking `sink(frame)` for
/// every dispatched merged frame in dispatch order. `raw_frames` counts
/// the E2SF bins pushed into DSFA.
template <typename Sink>
void ingest(const events::EventStream& stream, const IngressConfig& config,
            core::DynamicSparseFrameAggregator& dsfa,
            std::size_t& raw_frames, const Sink& sink) {
  // One shared clock construction with simulate_pipeline: serving and
  // the simulation frame identically by design, not by copy.
  const events::FrameClock clock =
      events::FrameClock::spanning(stream, config.frame_rate_hz);
  const core::Event2SparseFrame e2sf(stream.geometry(), config.e2sf);
  const auto drain = [&] {
    while (auto batch = dsfa.take_ready_batch()) {
      for (sparse::SparseFrame& frame : batch->frames) {
        if (!sink(std::move(frame))) return false;
      }
    }
    return true;
  };
  for (std::size_t i = 0; i < clock.interval_count(); ++i) {
    const events::TimeUs t0 = clock.timestamps[i];
    const events::TimeUs t1 = clock.timestamps[i + 1];
    for (sparse::SparseFrame& frame :
         e2sf.convert(stream.slice(t0, t1), t0, t1)) {
      ++raw_frames;
      dsfa.push(std::move(frame));
    }
    if (!drain()) return;
  }
  dsfa.dispatch_available();
  (void)drain();
}

}  // namespace

StreamIngress::StreamIngress(int stream_id,
                             const events::EventStream& stream,
                             IngressConfig config, FrameQueue& queue)
    : stream_id_(stream_id),
      stream_(stream),
      config_(std::move(config)),
      queue_(queue) {
  stats_.stream_id = stream_id;
}

void StreamIngress::run() {
  core::DynamicSparseFrameAggregator dsfa(config_.dsfa);
  const auto wall_start = std::chrono::steady_clock::now();
  double density_sum = 0.0;
  std::int64_t seq = 0;

  ingest(stream_, config_, dsfa, stats_.raw_frames,
         [&](sparse::SparseFrame frame) {
           if (config_.pace_speedup > 0.0) {
             // Sensor-faithful arrival: the merged frame exists once its
             // last bin closes (t_end), replayed at pace_speedup x.
             const auto arrival =
                 wall_start + std::chrono::microseconds(static_cast<long long>(
                                  static_cast<double>(frame.t_end -
                                                      stream_.t_begin()) /
                                  config_.pace_speedup));
             std::this_thread::sleep_until(arrival);
           }
           density_sum += frame.density();
           ReadyFrame ready;
           ready.stream_id = stream_id_;
           ready.seq = seq;
           ready.frame = std::move(frame);
           ready.ingress_density = dsfa.recent_density();
           std::optional<ReadyFrame> rejected = queue_.push(std::move(ready));
           if (rejected.has_value() &&
               queue_.policy() == OverflowPolicy::kBlock) {
             // Closed while blocked: the queue never accepted it.
             return false;
           }
           // Under kDropOldest a displaced frame may belong to any
           // stream; the runtime reconciles per-stream drops as
           // enqueued - completed once the queue drains.
           ++seq;
           ++stats_.enqueued;
           return true;
         });

  stats_.completed = 0;  // filled in by the runtime from worker results
  if (stats_.enqueued > 0) {
    stats_.mean_frame_density =
        density_sum / static_cast<double>(stats_.enqueued);
  }
  stats_.last_ingress_density = dsfa.recent_density();
}

std::vector<sparse::SparseFrame> StreamIngress::collect_frames(
    const events::EventStream& stream, const IngressConfig& config) {
  core::DynamicSparseFrameAggregator dsfa(config.dsfa);
  std::vector<sparse::SparseFrame> frames;
  std::size_t raw = 0;
  ingest(stream, config, dsfa, raw, [&](sparse::SparseFrame frame) {
    frames.push_back(std::move(frame));
    return true;
  });
  return frames;
}

}  // namespace evedge::serve
