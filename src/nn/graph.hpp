#pragma once

// Network graph representation: a DAG of layer nodes. This single
// structure serves three consumers:
//  - the functional engine (engine.hpp) executes it numerically,
//  - the hardware model derives per-layer workloads (MACs, bytes) from it,
//  - the Network Mapper assigns each node a processing element + precision.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/lif.hpp"
#include "sparse/sparse_ops.hpp"
#include "sparse/tensor.hpp"

namespace evedge::nn {

using sparse::Conv2dSpec;
using sparse::TensorShape;

/// Node operator kinds. Weight layers (the ones Table 1 counts) are
/// kConv, kTransposedConv, kFullyConnected, kSpikingConv and
/// kAdaptiveSpikingConv; the rest are shape/wiring helpers.
enum class LayerKind : std::uint8_t {
  kInput,              ///< graph input placeholder
  kConv,               ///< dense conv (+ optional fused ReLU)
  kTransposedConv,     ///< upsampling conv (+ optional fused ReLU)
  kFullyConnected,     ///< dense linear layer
  kMaxPool,            ///< kxk max pooling, stride = k
  kAvgPool,            ///< kxk average pooling, stride = k
  kUpsample,           ///< nearest-neighbour upsample
  kSpikingConv,        ///< conv whose activation is a shared-parameter LIF
  kAdaptiveSpikingConv,///< conv + per-channel (learnable) LIF dynamics
  kConcat,             ///< channel concat of 2 parents (center-crop to min)
  kAdd,                ///< elementwise sum of 2 parents (crop to min)
  kOutput,             ///< task head marker (identity)
};

/// Whether a node executes spiking (SNN) or conventional (ANN) compute.
enum class Domain : std::uint8_t { kAnn, kSnn };

[[nodiscard]] constexpr bool is_weight_layer(LayerKind k) noexcept {
  return k == LayerKind::kConv || k == LayerKind::kTransposedConv ||
         k == LayerKind::kFullyConnected || k == LayerKind::kSpikingConv ||
         k == LayerKind::kAdaptiveSpikingConv;
}

[[nodiscard]] constexpr Domain domain_of(LayerKind k) noexcept {
  return (k == LayerKind::kSpikingConv ||
          k == LayerKind::kAdaptiveSpikingConv)
             ? Domain::kSnn
             : Domain::kAnn;
}

/// Static description of one layer.
struct LayerSpec {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  Conv2dSpec conv{};        ///< conv-like layers
  int pool_kernel = 2;      ///< pool layers
  int upsample_factor = 2;  ///< upsample layers
  int fc_out = 0;           ///< fully connected output features
  bool relu_after = true;   ///< fused activation for ANN conv-like layers
  LifParams lif{};          ///< spiking layers

  // Filled by NetworkGraph when the node is added (per-timestep, batch 1).
  TensorShape in_shape{};
  TensorShape out_shape{};

  /// Multiply-accumulate operations for one forward application.
  [[nodiscard]] std::size_t macs() const noexcept;
  /// Number of learned weight values (0 for helper nodes).
  [[nodiscard]] std::size_t weight_count() const noexcept;
  /// Activation element counts.
  [[nodiscard]] std::size_t input_elements() const noexcept {
    return in_shape.element_count();
  }
  [[nodiscard]] std::size_t output_elements() const noexcept {
    return out_shape.element_count();
  }
};

/// One node of the graph: a LayerSpec plus its wiring.
struct LayerNode {
  int id = -1;
  LayerSpec spec;
  std::vector<int> parents;  ///< producer node ids (empty for kInput)
};

/// Append-only DAG; nodes are stored in topological order by construction
/// (parents must already exist). Shapes are inferred on insertion.
class NetworkGraph {
 public:
  /// Adds an input node of the given per-timestep shape; returns its id.
  int add_input(const std::string& name, TensorShape shape);

  /// Adds a layer fed by `parents`; infers and records shapes; returns id.
  int add_layer(LayerSpec spec, const std::vector<int>& parents);

  [[nodiscard]] const std::vector<LayerNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const LayerNode& node(int id) const;
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Ids of kInput nodes in insertion order.
  [[nodiscard]] std::vector<int> input_ids() const;
  /// Ids of kOutput nodes in insertion order.
  [[nodiscard]] std::vector<int> output_ids() const;

  /// Node ids with no consumers (should normally be exactly the outputs).
  [[nodiscard]] std::vector<int> sink_ids() const;

  /// Total MACs over all nodes (one timestep).
  [[nodiscard]] std::size_t total_macs() const noexcept;
  /// Total learned weights over all nodes.
  [[nodiscard]] std::size_t total_weights() const noexcept;

  /// Throws std::logic_error when structural invariants fail.
  void validate() const;

 private:
  [[nodiscard]] TensorShape infer_shape(const LayerSpec& spec,
                                        const std::vector<int>& parents) const;
  std::vector<LayerNode> nodes_;
};

/// Task families evaluated in the paper (Table 1).
enum class TaskKind : std::uint8_t {
  kOpticalFlow,
  kSegmentation,
  kDepth,
  kTracking,
};

[[nodiscard]] std::string to_string(TaskKind task);
[[nodiscard]] std::string to_string(LayerKind kind);

/// A complete network: graph + input representation metadata.
struct NetworkSpec {
  std::string name;
  TaskKind task = TaskKind::kOpticalFlow;
  NetworkGraph graph;
  int n_bins = 5;      ///< event bins per frame interval (input channels/steps)
  int timesteps = 1;   ///< SNN timesteps per inference (1 for pure ANN)

  [[nodiscard]] int weight_layer_count() const noexcept;
  [[nodiscard]] int snn_layer_count() const noexcept;
  [[nodiscard]] int ann_layer_count() const noexcept;

  /// "SNN", "ANN" or "SNN-ANN" as in Table 1's Type column.
  [[nodiscard]] std::string type_string() const;
};

}  // namespace evedge::nn
