// Serving-runtime test suite: FrameQueue policies, collator triggers,
// ingress determinism, the concurrent-vs-serial bitwise parity contract
// (drop policy disabled), drop accounting, the FunctionalNetwork clone
// contract under true thread concurrency (zoo-wide), planner drift
// re-calibration, and the hardened EVEDGE_THREADS handling.
//
// This suite is also the ThreadSanitizer CI target: every lock-guarded
// hand-off (queue, result sink, pool shutdown) is exercised under real
// producer/consumer threading here.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/batch_executor.hpp"
#include "core/dsfa.hpp"
#include "core/parallel.hpp"
#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "nn/engine.hpp"
#include "nn/zoo.hpp"
#include "quant/accuracy.hpp"
#include "serve/serving_runtime.hpp"
#include "sparse/tensor.hpp"

namespace ec = evedge::core;
namespace ee = evedge::events;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace es = evedge::sparse;
namespace ev = evedge::serve;

namespace {

/// Event stream matched to a network-input geometry (serving tests run
/// the functional nets at test scale, so the sensor matches the input).
ee::EventStream matched_stream(int h, int w, double rate_scale,
                               ee::TimeUs duration, std::uint64_t seed) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{w, h};
  cfg.seed = seed;
  cfg.blob_count = 3;
  ee::DensityProfile profile("test", 40.0 * rate_scale, {}, 10.0 * rate_scale,
                             0.4);
  return ee::PoissonEventSynthesizer(profile, cfg).generate(0, duration);
}

/// A ReadyFrame wrapping a synthetic sparse frame of roughly `fill`
/// site density at the given geometry.
ev::ReadyFrame synthetic_ready(int stream_id, std::int64_t seq, int h,
                               int w, double fill, std::uint64_t seed) {
  es::DenseTensor dense(es::TensorShape{1, 2, h, w});
  dense.fill_random(seed);
  const auto keep_every = fill > 0.0
                              ? static_cast<std::size_t>(1.0 / fill)
                              : dense.size();
  std::size_t i = 0;
  for (float& v : dense.data()) {
    if (i++ % keep_every != 0) v = 0.0f;
    v = v < 0.0f ? -v : v;  // event counts are non-negative
  }
  ev::ReadyFrame ready;
  ready.stream_id = stream_id;
  ready.seq = seq;
  ready.frame = es::SparseFrame::from_dense(dense);
  ready.enqueue_tp = std::chrono::steady_clock::now();
  return ready;
}

ev::IngressConfig test_ingress() {
  ev::IngressConfig config;
  config.frame_rate_hz = 30.0;
  config.dsfa.event_buffer_size = 6;
  config.dsfa.merge_bucket_capacity = 3;
  return config;
}

}  // namespace

// ------------------------------------------------------- EVEDGE_THREADS

TEST(ParallelThreads, ParseRejectsGarbage) {
  EXPECT_EQ(ec::parse_thread_override(nullptr), 0);
  EXPECT_EQ(ec::parse_thread_override(""), 0);
  EXPECT_EQ(ec::parse_thread_override("abc"), 0);
  EXPECT_EQ(ec::parse_thread_override("4abc"), 0);
  EXPECT_EQ(ec::parse_thread_override("0"), 0);
  EXPECT_EQ(ec::parse_thread_override("-3"), 0);
  EXPECT_EQ(ec::parse_thread_override("1e9"), 0);
  EXPECT_EQ(ec::parse_thread_override("99999999999999999999"), 0);
  EXPECT_EQ(ec::parse_thread_override("4.5"), 0);
  EXPECT_EQ(ec::parse_thread_override(" 4"), 4);  // strtol skips blanks
  EXPECT_EQ(ec::parse_thread_override("4"), 4);
  EXPECT_EQ(ec::parse_thread_override("1024"), 1024);
  EXPECT_EQ(ec::parse_thread_override("1025"), 0);  // above the cap
}

TEST(ParallelThreads, MalformedEnvFallsBackToHardware) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
  for (const char* bad : {"junk", "0", "-2", "2x", ""}) {
    ASSERT_EQ(setenv("EVEDGE_THREADS", bad, 1), 0);
    EXPECT_EQ(ec::parallel_thread_count(), fallback) << "value: " << bad;
  }
  ASSERT_EQ(setenv("EVEDGE_THREADS", "3", 1), 0);
  EXPECT_EQ(ec::parallel_thread_count(), 3);
  ASSERT_EQ(unsetenv("EVEDGE_THREADS"), 0);
  EXPECT_EQ(ec::parallel_thread_count(), fallback);
}

TEST(ParallelThreads, ProgrammaticOverrideWinsOverEnv) {
  ASSERT_EQ(setenv("EVEDGE_THREADS", "3", 1), 0);
  const int previous = ec::set_parallel_threads(2);
  EXPECT_EQ(ec::parallel_thread_count(), 2);
  ec::set_parallel_threads(previous);
  EXPECT_EQ(ec::parallel_thread_count(), 3);
  ASSERT_EQ(unsetenv("EVEDGE_THREADS"), 0);
}

// ------------------------------------------------------ DSFA density signal

TEST(DsfaDensity, RecentDensityTracksPushedFrames) {
  ec::DsfaConfig config;
  config.density_ema_alpha = 0.5;
  config.event_buffer_size = 100;  // no dispatch interference
  ec::DynamicSparseFrameAggregator dsfa(config);
  EXPECT_EQ(dsfa.recent_density(), 0.0);
  EXPECT_EQ(dsfa.density_drift(0.5), 0.0);  // no signal yet

  const auto frame_of = [](double fill, std::uint64_t seed) {
    return synthetic_ready(0, 0, 24, 32, fill, seed).frame;
  };
  const es::SparseFrame sparse = frame_of(0.02, 1);
  dsfa.push(sparse);
  EXPECT_DOUBLE_EQ(dsfa.recent_density(), sparse.density());

  // A run of much denser frames pulls the EMA toward their density.
  const es::SparseFrame dense_frame = frame_of(0.5, 2);
  for (int i = 0; i < 8; ++i) dsfa.push(dense_frame);
  EXPECT_GT(dsfa.recent_density(), 0.9 * dense_frame.density());
  EXPECT_GT(dsfa.density_drift(sparse.density()), 2.0);
}

TEST(DsfaDensity, RejectsBadAlpha) {
  ec::DsfaConfig config;
  config.density_ema_alpha = 0.0;
  EXPECT_THROW(ec::DynamicSparseFrameAggregator{config},
               std::invalid_argument);
  config.density_ema_alpha = 1.5;
  EXPECT_THROW(ec::DynamicSparseFrameAggregator{config},
               std::invalid_argument);
}

// ------------------------------------------------------------- FrameQueue

TEST(FrameQueue, FifoOrderAndDrainAfterClose) {
  ev::FrameQueue queue(8, ev::OverflowPolicy::kBlock);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(
        queue.push(synthetic_ready(0, i, 8, 8, 0.1, 7)).has_value());
  }
  queue.close();
  for (int i = 0; i < 5; ++i) {
    const auto frame = queue.pop();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->seq, i);
  }
  EXPECT_FALSE(queue.pop().has_value());  // closed and drained
  EXPECT_EQ(queue.peak_depth(), 5u);
}

TEST(FrameQueue, DropOldestDisplacesAndCounts) {
  ev::FrameQueue queue(2, ev::OverflowPolicy::kDropOldest);
  EXPECT_FALSE(queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7)).has_value());
  EXPECT_FALSE(queue.push(synthetic_ready(0, 1, 8, 8, 0.1, 7)).has_value());
  const auto displaced = queue.push(synthetic_ready(0, 2, 8, 8, 0.1, 7));
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->seq, 0);  // oldest out
  EXPECT_EQ(queue.dropped(), 1u);
  const auto next = queue.pop();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->seq, 1);
}

TEST(FrameQueue, BlockPolicyExertsBackpressure) {
  ev::FrameQueue queue(1, ev::OverflowPolicy::kBlock);
  EXPECT_FALSE(queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7)).has_value());

  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    (void)queue.push(synthetic_ready(0, 1, 8, 8, 0.1, 7));
    second_pushed.store(true);
  });
  // The producer must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_pushed.load());

  EXPECT_TRUE(queue.pop().has_value());  // frees the slot
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(queue.dropped(), 0u);
}

TEST(FrameQueue, CloseReleasesBlockedProducer) {
  ev::FrameQueue queue(1, ev::OverflowPolicy::kBlock);
  EXPECT_FALSE(queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7)).has_value());
  std::optional<ev::ReadyFrame> rejected;
  std::thread producer([&] {
    rejected = queue.push(synthetic_ready(0, 1, 8, 8, 0.1, 7));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  ASSERT_TRUE(rejected.has_value());  // returned unaccepted
  EXPECT_EQ(rejected->seq, 1);
}

// ----------------------------------------------------------- BatchCollator

TEST(BatchCollator, SizeTriggerFillsToMaxBatch) {
  ev::FrameQueue queue(16, ev::OverflowPolicy::kBlock);
  for (int i = 0; i < 7; ++i) {
    (void)queue.push(synthetic_ready(i % 3, i, 8, 8, 0.1, 7));
  }
  ev::BatchCollator collator({.max_batch = 4, .max_wait_us = 1e6});
  std::vector<ev::ReadyFrame> batch;
  ASSERT_TRUE(collator.collect(queue, batch));
  EXPECT_EQ(batch.size(), 4u);  // size-triggered, no deadline wait
  queue.close();
  ASSERT_TRUE(collator.collect(queue, batch));
  EXPECT_EQ(batch.size(), 3u);  // drains the remainder after close
  EXPECT_FALSE(collator.collect(queue, batch));
}

TEST(BatchCollator, DeadlineTriggerReturnsPartialBatch) {
  ev::FrameQueue queue(16, ev::OverflowPolicy::kBlock);
  (void)queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7));
  ev::BatchCollator collator({.max_batch = 8, .max_wait_us = 5e3});
  std::vector<ev::ReadyFrame> batch;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(collator.collect(queue, batch));
  const double waited_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_GE(waited_us, 4e3);  // held for the deadline before giving up
  queue.close();
}

// ----------------------------------------------------------- StreamIngress

TEST(StreamIngress, OfflineCollectIsDeterministicAndMatchesLiveRun) {
  const auto stream = matched_stream(32, 44, 1.0, 400'000, 11);
  const ev::IngressConfig config = test_ingress();
  const auto frames_a = ev::StreamIngress::collect_frames(stream, config);
  const auto frames_b = ev::StreamIngress::collect_frames(stream, config);
  ASSERT_FALSE(frames_a.empty());
  ASSERT_EQ(frames_a.size(), frames_b.size());
  for (std::size_t i = 0; i < frames_a.size(); ++i) {
    EXPECT_EQ(frames_a[i].nnz(), frames_b[i].nnz());
    EXPECT_EQ(frames_a[i].t_start, frames_b[i].t_start);
  }

  ev::FrameQueue queue(1024, ev::OverflowPolicy::kBlock);
  ev::StreamIngress ingress(0, stream, config, queue);
  ingress.run();
  EXPECT_EQ(ingress.stats().enqueued, frames_a.size());
  EXPECT_GT(ingress.stats().raw_frames, frames_a.size());  // DSFA merges
  EXPECT_GT(ingress.stats().last_ingress_density, 0.0);
  std::size_t drained = 0;
  queue.close();
  while (auto frame = queue.pop()) {
    EXPECT_EQ(frame->seq, static_cast<std::int64_t>(drained));
    EXPECT_EQ(frame->frame.nnz(), frames_a[drained].nnz());
    EXPECT_GT(frame->ingress_density, 0.0);
    ++drained;
  }
  EXPECT_EQ(drained, frames_a.size());
}

// ------------------------------------------- concurrent-vs-serial parity

namespace {

/// Runs the full parity contract on one network: concurrent serving
/// (block policy, capture on) must produce bitwise-identical outputs to
/// per-stream serial batch-1 execution, for every (stream, seq).
void expect_serving_parity(en::NetworkId id, bool planner) {
  const en::NetworkSpec spec =
      en::build_network(id, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;

  std::vector<ee::EventStream> streams;
  for (std::uint64_t s = 0; s < 3; ++s) {
    streams.push_back(matched_stream(shape.h, shape.w, 1.0 + 0.5 * s,
                                     300'000, 21 + s));
  }

  ev::ServeConfig config;
  config.ingress = test_ingress();
  config.n_workers = 2;
  config.capture_outputs = true;
  config.worker.use_planner = planner;
  config.worker.collator.max_batch = 4;
  ev::ServingRuntime runtime(spec, 7, config);

  const ev::ServeReport report = runtime.run(streams);
  EXPECT_EQ(report.frames_dropped, 0u);
  ASSERT_EQ(report.streams.size(), streams.size());

  std::vector<std::vector<es::SparseFrame>> frames;
  for (const ee::EventStream& stream : streams) {
    frames.push_back(ev::ServingRuntime::ingest(stream, config.ingress));
  }
  const auto serial = runtime.run_serial(frames, planner);

  std::size_t checked = 0;
  for (std::size_t s = 0; s < frames.size(); ++s) {
    ASSERT_EQ(report.streams[s].completed, frames[s].size());
    for (std::size_t i = 0; i < frames[s].size(); ++i) {
      const es::DenseTensor* served =
          runtime.output(static_cast<int>(s), static_cast<std::int64_t>(i));
      ASSERT_NE(served, nullptr) << "stream " << s << " seq " << i;
      EXPECT_EQ(es::max_abs_diff(*served, serial.outputs[s][i]), 0.0f)
          << spec.name << " stream " << s << " seq " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 6u);  // the run must have actually served frames
}

}  // namespace

TEST(ServingParity, SpikingNetworkPlannerOn) {
  expect_serving_parity(en::NetworkId::kDotie, true);
}

TEST(ServingParity, SpikingNetworkPlannerOff) {
  expect_serving_parity(en::NetworkId::kDotie, false);
}

TEST(ServingParity, HybridNetwork) {
  expect_serving_parity(en::NetworkId::kSpikeFlowNet, true);
}

TEST(ServingParity, TwoInputNetwork) {
  expect_serving_parity(en::NetworkId::kFusionFlowNet, true);
}

TEST(ServingRuntime, RejectsEmptyStreamUpFront) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  ev::ServeConfig config;
  config.ingress = test_ingress();
  ev::ServingRuntime runtime(spec, 7, config);
  // An empty stream must be rejected on the calling thread, not abort
  // the process from an ingress thread.
  std::vector<ee::EventStream> streams;
  streams.emplace_back(ee::SensorGeometry{44, 32});
  EXPECT_THROW((void)runtime.run(streams), std::invalid_argument);
  EXPECT_THROW((void)runtime.run({}), std::invalid_argument);
}

TEST(ServingRuntime, DropPolicyAccountsEveryFrame) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  std::vector<ee::EventStream> streams;
  for (std::uint64_t s = 0; s < 4; ++s) {
    streams.push_back(matched_stream(shape.h, shape.w, 2.0, 400'000, 31 + s));
  }

  ev::ServeConfig config;
  config.ingress = test_ingress();
  config.n_workers = 1;
  config.queue_capacity = 2;  // tiny: ingress outruns the single worker
  config.overflow = ev::OverflowPolicy::kDropOldest;
  config.worker.use_planner = false;
  ev::ServingRuntime runtime(spec, 7, config);
  const ev::ServeReport report = runtime.run(streams);

  std::size_t enqueued = 0;
  for (const ev::StreamServeStats& s : report.streams) {
    EXPECT_EQ(s.enqueued, s.completed + s.dropped);
    enqueued += s.enqueued;
  }
  EXPECT_EQ(report.frames_completed + report.frames_dropped, enqueued);
  EXPECT_GT(report.frames_completed, 0u);
  EXPECT_GT(report.queue_peak_depth, 0u);
}

// ----------------------------------------------------- clone concurrency

TEST(CloneContract, CloneMatchesOriginalAndIsIndependent) {
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kAdaptiveSpikeNet, en::ZooConfig::test_scale());
  en::FunctionalNetwork original(spec, 7);
  const auto samples = eq::make_validation_set(spec, 1, 99);
  const auto& steps = samples[0].event_steps;

  en::FunctionalNetwork copy = original.clone();
  const es::DenseTensor expected = original.run(steps);
  EXPECT_EQ(es::max_abs_diff(copy.run(steps), expected), 0.0f);

  // Mutating the original's weights must not leak into the clone.
  int node = -1;
  for (const en::LayerNode& n : original.spec().graph.nodes()) {
    if (en::is_weight_layer(n.spec.kind)) {
      node = n.id;
      break;
    }
  }
  ASSERT_GE(node, 0);
  for (float& w : original.weights(node).data()) w += 1.0f;
  EXPECT_NE(es::max_abs_diff(original.run(steps), expected), 0.0f);
  EXPECT_EQ(es::max_abs_diff(copy.run(steps), expected), 0.0f);
}

TEST(CloneContract, ConcurrentClonesBitMatchSerialAcrossZoo) {
  // The one-Workspace-per-worker contract the serve pool relies on: two
  // clones running the same net on separate threads produce bitwise the
  // serial batch-1 outputs, for every zoo network.
  for (const en::NetworkId id : en::table1_networks()) {
    const en::NetworkSpec spec =
        en::build_network(id, en::ZooConfig::test_scale());
    en::FunctionalNetwork prototype(spec, 7);
    const auto samples = eq::make_validation_set(spec, 2, 123);
    const auto image_of = [&](std::size_t i) {
      return samples[i].image.has_value() ? &samples[i].image.value()
                                          : nullptr;
    };

    std::vector<es::DenseTensor> serial;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      serial.push_back(
          prototype.run(samples[i].event_steps, image_of(i)));
    }

    en::FunctionalNetwork worker_a = prototype.clone();
    en::FunctionalNetwork worker_b = prototype.clone();
    es::DenseTensor out_a;
    es::DenseTensor out_b;
    std::thread ta(
        [&] { out_a = worker_a.run(samples[0].event_steps, image_of(0)); });
    std::thread tb(
        [&] { out_b = worker_b.run(samples[1].event_steps, image_of(1)); });
    ta.join();
    tb.join();
    EXPECT_EQ(es::max_abs_diff(out_a, serial[0]), 0.0f) << spec.name;
    EXPECT_EQ(es::max_abs_diff(out_b, serial[1]), 0.0f) << spec.name;
  }
}

// ------------------------------------------------- planner drift refresh

TEST(DriftRecalibration, DensityShiftUpdatesWorkerRoutes) {
  // Mid scale with paper-band thresholds: the event-input layer routes
  // sparse at ~1% fill and must fall back to dense when the live density
  // jumps far out of the calibration band.
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kDotie, en::ZooConfig{64, 88, 16, 5, 2.0f});
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  en::FunctionalNetwork prototype(spec, 7);

  ev::WorkerConfig config;
  config.recalibration_band = 4.0;
  ev::ServeWorker worker(0, prototype, config);
  std::size_t sunk = 0;
  const ev::ResultSink sink =
      [&](const ev::ReadyFrame&, const es::DenseTensor&, int, double) {
        ++sunk;
      };

  // Warmup at ~1% fill: lazy calibration, no recalibration.
  std::vector<ev::ReadyFrame> sparse_batch;
  for (int i = 0; i < 2; ++i) {
    sparse_batch.push_back(
        synthetic_ready(0, i, shape.h, shape.w, 0.01, 41 + i));
  }
  worker.process_batch(sparse_batch, sink);
  ASSERT_NE(worker.plan(), nullptr);
  EXPECT_EQ(worker.stats().calibrations, 1u);
  EXPECT_EQ(worker.stats().recalibrations, 0u);
  const double sparse_probe = worker.stats().plan_probe_density;
  const int sparse_routes = worker.plan()->sparse_node_count();
  EXPECT_GT(sparse_routes, 0);  // the event layer routes sparse at 1%

  // Same regime again: still in band, no refresh.
  worker.process_batch(sparse_batch, sink);
  EXPECT_EQ(worker.stats().recalibrations, 0u);

  // Scene shift to ~60% fill: far outside the 4x band -> recalibrate,
  // and the dense regime must drop the sparse routes.
  std::vector<ev::ReadyFrame> dense_batch;
  for (int i = 0; i < 2; ++i) {
    dense_batch.push_back(
        synthetic_ready(0, 10 + i, shape.h, shape.w, 0.6, 51 + i));
  }
  worker.process_batch(dense_batch, sink);
  EXPECT_EQ(worker.stats().recalibrations, 1u);
  EXPECT_GT(worker.stats().plan_probe_density, 4.0 * sparse_probe);
  EXPECT_LT(worker.plan()->sparse_node_count(), sparse_routes);
  EXPECT_EQ(sunk, 6u);
}

// ------------------------------------------------------------ serve stats

TEST(ServeStats, ReservoirPercentiles) {
  ev::LatencyReservoir reservoir;
  EXPECT_EQ(reservoir.percentile_us(0.95), 0.0);
  for (int i = 1; i <= 100; ++i) reservoir.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(reservoir.percentile_us(0.0), 1.0);
  EXPECT_DOUBLE_EQ(reservoir.percentile_us(0.5), 51.0);
  EXPECT_DOUBLE_EQ(reservoir.percentile_us(1.0), 100.0);
  EXPECT_NEAR(reservoir.percentile_us(0.95), 95.0, 1.0);
  EXPECT_DOUBLE_EQ(reservoir.mean_us(), 50.5);
  EXPECT_DOUBLE_EQ(reservoir.max_us(), 100.0);
}
