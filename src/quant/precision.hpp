#pragma once

// Numeric precision levels offered by the platform's processing elements
// (paper §4.3: the mapper selects a precision per layer from the choices
// each PE supports; TensorRT on Xavier exposes FP32/FP16/INT8).

#include <cstdint>
#include <string>

namespace evedge::quant {

enum class Precision : std::uint8_t {
  kFp32 = 0,
  kFp16 = 1,
  kInt8 = 2,
};

[[nodiscard]] constexpr double bytes_per_element(Precision p) noexcept {
  switch (p) {
    case Precision::kFp32: return 4.0;
    case Precision::kFp16: return 2.0;
    case Precision::kInt8: return 1.0;
  }
  return 4.0;
}

[[nodiscard]] inline std::string to_string(Precision p) {
  switch (p) {
    case Precision::kFp32: return "FP32";
    case Precision::kFp16: return "FP16";
    case Precision::kInt8: return "INT8";
  }
  return "?";
}

/// All precisions, widest first.
inline constexpr Precision kAllPrecisions[] = {
    Precision::kFp32, Precision::kFp16, Precision::kInt8};

}  // namespace evedge::quant
