#pragma once

// Serving telemetry: per-stream latency/throughput/drop accounting and
// the aggregate report the ServingRuntime hands back after a run. The
// quantities mirror what a production inference server exports — tail
// latency percentiles per stream, aggregate frames/s, queue depth and
// drop counters — so the bench harness and tests read one structure.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace evedge::serve {

/// Latency sample reservoir (microseconds). Percentiles are computed on
/// demand over a sorted copy; serving runs are bounded (thousands of
/// frames), so keeping every sample exact beats a sketch here.
class LatencyReservoir {
 public:
  void add(double latency_us) { samples_us_.push_back(latency_us); }
  void merge(const LatencyReservoir& other);

  [[nodiscard]] std::size_t count() const noexcept {
    return samples_us_.size();
  }
  [[nodiscard]] double mean_us() const noexcept;
  [[nodiscard]] double max_us() const noexcept;
  /// Interpolation-free percentile (nearest-rank on the sorted samples);
  /// q in [0, 1]. 0 when empty.
  [[nodiscard]] double percentile_us(double q) const;

 private:
  std::vector<double> samples_us_;
};

/// Per-stream serving statistics.
struct StreamServeStats {
  int stream_id = -1;
  std::size_t raw_frames = 0;   ///< E2SF bins pushed into DSFA
  std::size_t enqueued = 0;     ///< merged frames offered to the queue
  std::size_t dropped = 0;      ///< frames displaced by drop-oldest
  std::size_t completed = 0;    ///< frames through inference
  double mean_frame_density = 0.0;  ///< mean merged-frame spatial density
  double last_ingress_density = 0.0;  ///< DSFA recent_density() at stream end
  LatencyReservoir latency;     ///< enqueue -> inference completion
};

/// Per-worker serving statistics.
struct WorkerServeStats {
  int worker_id = -1;
  std::size_t batches = 0;
  std::size_t samples = 0;
  double busy_ms = 0.0;          ///< wall time inside run_batched
  std::size_t calibrations = 0;  ///< planner warmup calibrations (0 or 1)
  std::size_t recalibrations = 0;  ///< density-drift plan refreshes
  int plan_sparse_nodes = 0;     ///< sparse-routed nodes of the live plan
  double plan_probe_density = 0.0;  ///< live plan's calibration density

  [[nodiscard]] double mean_batch() const noexcept {
    return batches > 0
               ? static_cast<double>(samples) / static_cast<double>(batches)
               : 0.0;
  }
};

/// Aggregate report of one ServingRuntime::run().
struct ServeReport {
  double wall_ms = 0.0;          ///< ingress start -> last worker exit
  std::size_t frames_completed = 0;
  std::size_t frames_dropped = 0;
  std::size_t queue_peak_depth = 0;
  double queue_mean_depth = 0.0;
  std::vector<StreamServeStats> streams;
  std::vector<WorkerServeStats> workers;

  /// Aggregate throughput in completed frames per second.
  [[nodiscard]] double frames_per_second() const noexcept {
    return wall_ms > 0.0
               ? static_cast<double>(frames_completed) / (wall_ms / 1e3)
               : 0.0;
  }
  /// Latency percentile pooled over every stream's reservoir.
  [[nodiscard]] double percentile_us(double q) const;
  [[nodiscard]] std::size_t total_batches() const noexcept;
  [[nodiscard]] double mean_batch() const noexcept;

  /// Human-readable multi-line summary (bench/debug output).
  [[nodiscard]] std::string describe() const;
};

}  // namespace evedge::serve
