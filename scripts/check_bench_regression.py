#!/usr/bin/env python3
"""Kernel-bench perf regression gate.

Compares a freshly produced BENCH_kernels.json against the checked-in
baseline and fails (exit 1) when any kernel's speedup dropped by more
than the threshold. Speedup (ref_ms / fast_ms) is measured against the
seed reference kernels on the same machine in the same run, so the
ratio is largely machine-speed invariant — a drop means the fast path
itself regressed relative to the reference work.

Records are keyed by (kernel, shape, density). Keys present only in the
fresh run (newly added benches) are reported but do not gate; keys
missing from the fresh run fail the gate (a silently dropped bench must
not pass as "no regression").

Usage: check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.20]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for r in data["results"]:
        key = (r["kernel"], r["shape"], round(float(r["density"]), 6))
        out[key] = float(r["speedup"])
    return out, int(data.get("threads", 0))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional speedup drop")
    args = parser.parse_args()

    base, base_threads = load(args.baseline)
    fresh, fresh_threads = load(args.fresh)
    if base_threads != fresh_threads:
        # Extra fast-path threads would mask real regressions (the seed
        # reference is single-threaded either way).
        print(f"thread-count mismatch: baseline ran with {base_threads} "
              f"threads, fresh run with {fresh_threads} — regenerate one "
              f"side (EVEDGE_THREADS pins the worker count)",
              file=sys.stderr)
        return 1

    failures = []
    print(f"{'kernel':<24} {'shape':<28} {'density':>8} "
          f"{'base':>8} {'fresh':>8} {'ratio':>7}")
    for key in sorted(base):
        kernel, shape, density = key
        if key not in fresh:
            failures.append(f"missing from fresh run: {key}")
            continue
        b, f = base[key], fresh[key]
        ratio = f / b if b > 0 else float("inf")
        flag = "  FAIL" if ratio < 1.0 - args.threshold else ""
        print(f"{kernel:<24} {shape:<28} {density:>8.4f} "
              f"{b:>7.2f}x {f:>7.2f}x {ratio:>7.2f}{flag}")
        if ratio < 1.0 - args.threshold:
            failures.append(
                f"{kernel} {shape} density={density}: speedup "
                f"{b:.2f}x -> {f:.2f}x ({(1.0 - ratio) * 100:.0f}% drop)")
    for key in sorted(set(fresh) - set(base)):
        print(f"{key[0]:<24} {key[1]:<28} {key[2]:>8.4f} "
              f"{'new':>8} {fresh[key]:>7.2f}x")

    if failures:
        print("\nPERF REGRESSION GATE FAILED "
              f"(>{args.threshold * 100:.0f}% speedup drop):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nperf gate OK: no kernel dropped more than "
          f"{args.threshold * 100:.0f}% vs baseline "
          f"({len(base)} gated, {len(set(fresh) - set(base))} new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
