#include "wire/crc32.hpp"

#include <array>

namespace evedge::wire {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace evedge::wire
