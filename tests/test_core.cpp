// Tests for the core Ev-Edge components: the Event2Sparse Frame converter
// (Eq. 1), the Dynamic Sparse Frame Aggregator (Fig. 6 semantics), the
// inference cost model, the pipeline simulator and end-to-end accuracy.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "core/batch_executor.hpp"
#include "core/dsfa.hpp"
#include "core/e2e_accuracy.hpp"
#include "core/e2sf.hpp"
#include "core/inference_cost.hpp"
#include "core/pipeline.hpp"
#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "hw/profiler.hpp"
#include "nn/zoo.hpp"
#include "sched/mapping.hpp"

namespace ec = evedge::core;
namespace ee = evedge::events;
namespace eh = evedge::hw;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace es = evedge::sparse;
namespace ss = evedge::sched;

namespace {

ee::EventStream make_stream(ee::SensorGeometry g, ee::TimeUs duration,
                            std::uint64_t seed = 42,
                            const char* profile = "indoor1") {
  ee::SynthConfig cfg;
  cfg.geometry = g;
  cfg.seed = seed;
  const auto p = std::string(profile) == "indoor2"
                     ? ee::DensityProfile::indoor_flying2()
                     : ee::DensityProfile::indoor_flying1();
  return ee::PoissonEventSynthesizer(p, cfg).generate(0, duration);
}

es::SparseFrame frame_at(ee::TimeUs t_start, ee::TimeUs t_end, int h, int w,
                         int nnz, std::uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> row(0, h - 1);
  std::uniform_int_distribution<int> col(0, w - 1);
  es::SparseFrame f(h, w);
  for (int i = 0; i < nnz; ++i) {
    f.positive().accumulate(row(rng), col(rng), 1.0f);
  }
  f.t_start = t_start;
  f.t_end = t_end;
  f.source_events = nnz;
  return f;
}

}  // namespace

// ------------------------------------------------------------------- E2SF

TEST(E2sf, EveryEventLandsInExactlyOneBin) {
  const ee::SensorGeometry g{32, 24};
  const auto stream = make_stream(g, 500'000);
  const ec::Event2SparseFrame e2sf(g, ec::E2sfConfig{5});
  const auto frames = e2sf.convert(stream.slice(0, 100'000), 0, 100'000);
  ASSERT_EQ(frames.size(), 5u);
  std::int64_t binned = 0;
  double mass = 0.0;
  for (const auto& f : frames) {
    binned += f.source_events;
    mass += f.event_mass();
    EXPECT_NO_THROW(f.validate());
  }
  const auto window = stream.count_in(0, 100'000);
  EXPECT_EQ(static_cast<std::size_t>(binned), window);
  // Polarity counts are conserved: total mass == total events.
  EXPECT_NEAR(mass, static_cast<double>(window), 1e-6);
}

TEST(E2sf, BinIndexMatchesEquation1) {
  // biS = (1000 - 0) / 4 = 250; event at t=620 -> bin floor(620/250) = 2.
  const ee::SensorGeometry g{8, 8};
  ee::EventStream stream(g);
  stream.push_back({3, 4, 620, ee::Polarity::kPositive});
  const ec::Event2SparseFrame e2sf(g, ec::E2sfConfig{4});
  const auto frames = e2sf.convert(stream.events(), 0, 1000);
  EXPECT_EQ(frames[2].source_events, 1);
  EXPECT_FLOAT_EQ(frames[2].positive().at(4, 3), 1.0f);
  EXPECT_EQ(frames[0].source_events + frames[1].source_events +
                frames[3].source_events,
            0);
}

TEST(E2sf, PolaritiesAccumulateSeparately) {
  const ee::SensorGeometry g{4, 4};
  ee::EventStream stream(g);
  stream.push_back({1, 1, 10, ee::Polarity::kPositive});
  stream.push_back({1, 1, 20, ee::Polarity::kPositive});
  stream.push_back({1, 1, 30, ee::Polarity::kNegative});
  const ec::Event2SparseFrame e2sf(g, ec::E2sfConfig{1});
  const auto frames = e2sf.convert(stream.events(), 0, 100);
  EXPECT_FLOAT_EQ(frames[0].positive().at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(frames[0].negative().at(1, 1), 1.0f);
}

TEST(E2sf, BinTimestampsPartitionInterval) {
  const ee::SensorGeometry g{8, 8};
  const ec::Event2SparseFrame e2sf(g, ec::E2sfConfig{3});
  const auto frames = e2sf.convert({}, 1000, 2000);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].t_start, 1000);
  EXPECT_EQ(frames[2].t_end, 2000);
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].t_start, frames[i - 1].t_end);
  }
}

TEST(E2sf, MatchesDenseFrameConstruction) {
  // The sparse path must encode exactly what the dense path encodes.
  const ee::SensorGeometry g{16, 12};
  const auto stream = make_stream(g, 200'000, 9);
  const ec::Event2SparseFrame e2sf(g, ec::E2sfConfig{4});
  const auto window = stream.slice(0, 150'000);
  const auto sparse_frames = e2sf.convert(window, 0, 150'000);
  const auto dense_frames = ec::dense_event_frames(g, window, 0, 150'000, 4);
  ASSERT_EQ(sparse_frames.size(), dense_frames.size());
  for (std::size_t i = 0; i < sparse_frames.size(); ++i) {
    EXPECT_FLOAT_EQ(
        es::max_abs_diff(sparse_frames[i].to_dense(), dense_frames[i]),
        0.0f);
  }
}

TEST(E2sf, RejectsEventsOutsideInterval) {
  const ee::SensorGeometry g{4, 4};
  ee::EventStream stream(g);
  stream.push_back({0, 0, 5000, ee::Polarity::kPositive});
  const ec::Event2SparseFrame e2sf(g, ec::E2sfConfig{2});
  EXPECT_THROW((void)e2sf.convert(stream.events(), 0, 1000),
               std::invalid_argument);
}

TEST(E2sf, StaticAccumulationByCount) {
  const ee::SensorGeometry g{16, 12};
  const auto stream = make_stream(g, 300'000, 11);
  const auto frames = ec::accumulate_by_count(stream, 100);
  std::int64_t total = 0;
  for (const auto& f : frames) total += f.source_events;
  EXPECT_EQ(static_cast<std::size_t>(total), stream.size());
  // All but the last frame hold exactly 100 events.
  for (std::size_t i = 0; i + 1 < frames.size(); ++i) {
    EXPECT_EQ(frames[i].source_events, 100);
  }
}

TEST(E2sf, StaticAccumulationByTime) {
  const ee::SensorGeometry g{16, 12};
  const auto stream = make_stream(g, 300'000, 13);
  const auto frames = ec::accumulate_by_time(stream, 50'000);
  std::int64_t total = 0;
  for (const auto& f : frames) {
    total += f.source_events;
    EXPECT_EQ(f.t_end - f.t_start, 50'000);
  }
  EXPECT_EQ(static_cast<std::size_t>(total), stream.size());
}

// ------------------------------------------------------------------- DSFA

TEST(Dsfa, NoFrameLostOrDuplicated) {
  ec::DsfaConfig cfg;
  cfg.event_buffer_size = 6;
  cfg.merge_bucket_capacity = 3;
  cfg.max_time_delay_us = 1e9;   // never close on time
  cfg.max_density_change = 1e9;  // never close on density
  cfg.inference_queue_capacity = 100;
  ec::DynamicSparseFrameAggregator dsfa(cfg);
  std::int64_t pushed_events = 0;
  for (int i = 0; i < 12; ++i) {
    auto f = frame_at(i * 1000, (i + 1) * 1000, 16, 16, 10 + i,
                      static_cast<std::uint64_t>(i));
    pushed_events += f.source_events;
    dsfa.push(std::move(f));
  }
  dsfa.dispatch_available();
  std::int64_t dispatched_events = 0;
  while (auto batch = dsfa.take_ready_batch()) {
    for (const auto& f : batch->frames) dispatched_events += f.source_events;
  }
  EXPECT_EQ(dispatched_events, pushed_events);
  EXPECT_EQ(dsfa.stats().frames_in, 12u);
  EXPECT_EQ(dsfa.stats().frames_discarded, 0u);
}

TEST(Dsfa, RespectsBucketCapacity) {
  ec::DsfaConfig cfg;
  cfg.event_buffer_size = 100;
  cfg.merge_bucket_capacity = 2;
  cfg.max_time_delay_us = 1e9;
  cfg.max_density_change = 1e9;
  ec::DynamicSparseFrameAggregator dsfa(cfg);
  for (int i = 0; i < 6; ++i) {
    dsfa.push(frame_at(i * 1000, (i + 1) * 1000, 8, 8, 8,
                       static_cast<std::uint64_t>(i)));
  }
  dsfa.dispatch_available();
  const auto batch = dsfa.take_ready_batch();
  ASSERT_TRUE(batch.has_value());
  // 6 frames at capacity 2 -> 3 merged buckets.
  EXPECT_EQ(batch->size(), 3u);
  EXPECT_EQ(dsfa.stats().capacity_closures, 3u);
}

TEST(Dsfa, TimeThresholdClosesBucket) {
  ec::DsfaConfig cfg;
  cfg.event_buffer_size = 100;
  cfg.merge_bucket_capacity = 10;
  cfg.max_time_delay_us = 500.0;  // MtTh
  cfg.max_density_change = 1e9;
  ec::DynamicSparseFrameAggregator dsfa(cfg);
  dsfa.push(frame_at(0, 100, 8, 8, 8, 1));
  dsfa.push(frame_at(10'000, 10'100, 8, 8, 8, 2));  // delay >> MtTh
  dsfa.dispatch_available();
  const auto batch = dsfa.take_ready_batch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 2u);  // not merged
  EXPECT_EQ(dsfa.stats().time_threshold_closures, 1u);
}

TEST(Dsfa, DensityThresholdClosesBucket) {
  ec::DsfaConfig cfg;
  cfg.event_buffer_size = 100;
  cfg.merge_bucket_capacity = 10;
  cfg.max_time_delay_us = 1e9;
  cfg.max_density_change = 0.5;  // MdTh: 50% relative change
  ec::DynamicSparseFrameAggregator dsfa(cfg);
  dsfa.push(frame_at(0, 100, 16, 16, 10, 1));
  dsfa.push(frame_at(100, 200, 16, 16, 200, 2));  // ~20x denser
  dsfa.dispatch_available();
  const auto batch = dsfa.take_ready_batch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 2u);
  EXPECT_EQ(dsfa.stats().density_threshold_closures, 1u);
}

TEST(Dsfa, CBatchNeverMerges) {
  ec::DsfaConfig cfg;
  cfg.event_buffer_size = 4;
  cfg.merge_bucket_capacity = 4;
  cfg.merge_mode = es::MergeMode::kBatch;
  ec::DynamicSparseFrameAggregator dsfa(cfg);
  for (int i = 0; i < 4; ++i) {
    dsfa.push(frame_at(i * 100, (i + 1) * 100, 8, 8, 6,
                       static_cast<std::uint64_t>(i)));
  }
  const auto batch = dsfa.take_ready_batch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 4u);  // one bucket per frame
  for (const auto& f : batch->frames) {
    EXPECT_EQ(f.source_events, 6);
  }
}

TEST(Dsfa, BufferOverflowTriggersDispatch) {
  ec::DsfaConfig cfg;
  cfg.event_buffer_size = 3;
  cfg.merge_bucket_capacity = 2;
  cfg.max_time_delay_us = 1e9;
  cfg.max_density_change = 1e9;
  ec::DynamicSparseFrameAggregator dsfa(cfg);
  dsfa.push(frame_at(0, 100, 8, 8, 5, 1));
  dsfa.push(frame_at(100, 200, 8, 8, 5, 2));
  EXPECT_FALSE(dsfa.take_ready_batch().has_value());  // 2 < EBufsize
  dsfa.push(frame_at(200, 300, 8, 8, 5, 3));          // hits EBufsize
  const auto batch = dsfa.take_ready_batch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(dsfa.buffered_frames(), 0u);
}

TEST(Dsfa, InferenceQueueDiscardsOldest) {
  ec::DsfaConfig cfg;
  cfg.event_buffer_size = 1;  // dispatch on every push
  cfg.merge_bucket_capacity = 1;
  cfg.inference_queue_capacity = 2;
  ec::DynamicSparseFrameAggregator dsfa(cfg);
  for (int i = 0; i < 5; ++i) {
    dsfa.push(frame_at(i * 100, (i + 1) * 100, 8, 8, 4,
                       static_cast<std::uint64_t>(i)));
  }
  EXPECT_GT(dsfa.stats().frames_discarded, 0u);
  // The two newest batches remain.
  auto first = dsfa.take_ready_batch();
  auto second = dsfa.take_ready_batch();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(dsfa.take_ready_batch().has_value());
  EXPECT_GT(second->frames.front().t_start, first->frames.front().t_start);
}

TEST(Dsfa, MergePreservesEventMassUnderCAdd) {
  ec::DsfaConfig cfg;
  cfg.event_buffer_size = 4;
  cfg.merge_bucket_capacity = 4;
  cfg.merge_mode = es::MergeMode::kAdd;
  cfg.max_time_delay_us = 1e9;
  cfg.max_density_change = 1e9;
  ec::DynamicSparseFrameAggregator dsfa(cfg);
  double mass_in = 0.0;
  for (int i = 0; i < 4; ++i) {
    auto f = frame_at(i * 100, (i + 1) * 100, 8, 8, 7,
                      static_cast<std::uint64_t>(i));
    mass_in += f.event_mass();
    dsfa.push(std::move(f));
  }
  const auto batch = dsfa.take_ready_batch();
  ASSERT_TRUE(batch.has_value());
  double mass_out = 0.0;
  for (const auto& f : batch->frames) mass_out += f.event_mass();
  EXPECT_NEAR(mass_out, mass_in, 1e-6);
}

// --------------------------------------------------------- inference cost

namespace {

struct CostFixture {
  eh::Platform platform = eh::xavier_agx();
  en::NetworkSpec spec =
      en::build_network(en::NetworkId::kSpikeFlowNet,
                        en::ZooConfig::test_scale());
  ec::ActivationDensityProfile densities =
      ec::measure_activation_densities(spec, 7);
  ss::TaskMapping gpu_mapping = ss::uniform_candidate(
      {spec}, platform.first_pe(eh::PeKind::kGpu),
      eq::Precision::kFp32).tasks.front();
};

}  // namespace

TEST(InferenceCost, MeasuredDensitiesAreSane) {
  CostFixture f;
  for (const auto& node : f.spec.graph.nodes()) {
    const double d = f.densities.density[static_cast<std::size_t>(node.id)];
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  // Spiking encoder outputs must be sparse (high activation sparsity).
  int spiking_checked = 0;
  for (const auto& node : f.spec.graph.nodes()) {
    if (en::domain_of(node.spec.kind) == en::Domain::kSnn) {
      EXPECT_LT(f.densities.density[static_cast<std::size_t>(node.id)], 0.6);
      ++spiking_checked;
    }
  }
  EXPECT_EQ(spiking_checked, 4);
}

namespace {

/// Full-scale cost fixture with a synthetic density profile: at realistic
/// layer sizes the sparse-route economics are visible (at tiny test scale
/// every layer is launch-overhead bound and dense always wins — itself a
/// property the model should exhibit).
struct FullScaleCostFixture {
  eh::Platform platform = eh::xavier_agx();
  en::NetworkSpec spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                           en::ZooConfig::full_scale());
  ec::ActivationDensityProfile densities;
  ss::TaskMapping gpu_mapping;

  FullScaleCostFixture() {
    densities.measured_input_density = 0.1;
    densities.density.assign(spec.graph.size(), 0.5);
    // Spiking nodes sparse (high activation sparsity), per measurement.
    for (const auto& node : spec.graph.nodes()) {
      if (en::domain_of(node.spec.kind) == en::Domain::kSnn) {
        densities.density[static_cast<std::size_t>(node.id)] = 0.15;
      }
    }
    gpu_mapping = ss::uniform_candidate(
                      {spec}, platform.first_pe(eh::PeKind::kGpu),
                      eq::Precision::kFp32)
                      .tasks.front();
  }
};

}  // namespace

TEST(InferenceCost, SparseRoutesHelpAtLowDensity) {
  FullScaleCostFixture f;
  ec::InferenceCostOptions dense_opts;
  ec::InferenceCostOptions sparse_opts;
  sparse_opts.use_sparse_routes = true;
  const auto dense = ec::estimate_inference(
      f.spec, f.gpu_mapping, f.platform, f.densities, 0.02, dense_opts);
  const auto sparse = ec::estimate_inference(
      f.spec, f.gpu_mapping, f.platform, f.densities, 0.02, sparse_opts);
  EXPECT_LT(sparse.latency_us, dense.latency_us);
}

TEST(InferenceCost, EncodeOverheadErasesSparseGains) {
  // The paper's motivation for E2SF: dense->sparse encoding overheads
  // outweigh the sparse-kernel benefit.
  FullScaleCostFixture f;
  ec::InferenceCostOptions sparse_opts;
  sparse_opts.use_sparse_routes = true;
  ec::InferenceCostOptions encode_opts = sparse_opts;
  encode_opts.charge_encode_overhead = true;
  const auto direct = ec::estimate_inference(
      f.spec, f.gpu_mapping, f.platform, f.densities, 0.05, sparse_opts);
  const auto encoded = ec::estimate_inference(
      f.spec, f.gpu_mapping, f.platform, f.densities, 0.05, encode_opts);
  EXPECT_GT(encoded.latency_us, direct.latency_us);
}

TEST(InferenceCost, BatchingAmortizes) {
  CostFixture f;
  ec::InferenceCostOptions opts;
  opts.use_sparse_routes = true;
  const auto single = ec::estimate_inference(
      f.spec, f.gpu_mapping, f.platform, f.densities, 0.05, opts);
  opts.batch = 4;
  const auto batched = ec::estimate_inference(
      f.spec, f.gpu_mapping, f.platform, f.densities, 0.05, opts);
  EXPECT_LT(batched.latency_us, 4.0 * single.latency_us);
  EXPECT_GT(batched.latency_us, single.latency_us);
}

TEST(InferenceCost, MovingAnnConvsToCpuPaysTransfersAndSlowCompute) {
  // Full-scale descriptors: at realistic layer sizes dense GEMMs on the
  // CPU are far slower than on the GPU and the cross-PE edges add
  // transfer time. (At toy test scale the GPU launch overhead dominates
  // and this premise does not hold — which is itself a property the
  // latency model should exhibit, hence the full-scale spec here.)
  const eh::Platform platform = eh::xavier_agx();
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::full_scale());
  ec::ActivationDensityProfile densities;
  densities.density.assign(spec.graph.size(), 0.5);
  densities.measured_input_density = 0.5;
  const auto gpu_mapping =
      ss::uniform_candidate({spec}, platform.first_pe(eh::PeKind::kGpu),
                            eq::Precision::kFp32)
          .tasks.front();
  auto split = gpu_mapping;
  int moved = 0;
  for (const auto& node : spec.graph.nodes()) {
    if (node.spec.kind == en::LayerKind::kConv && moved < 2) {
      split.nodes[static_cast<std::size_t>(node.id)].pe =
          platform.first_pe(eh::PeKind::kCpu);
      ++moved;
    }
  }
  ASSERT_EQ(moved, 2);
  ec::InferenceCostOptions opts;
  const auto gpu_only = ec::estimate_inference(spec, gpu_mapping, platform,
                                               densities, 0.5, opts);
  const auto crossed =
      ec::estimate_inference(spec, split, platform, densities, 0.5, opts);
  EXPECT_GT(crossed.latency_us, gpu_only.latency_us);
}

TEST(InferenceCost, SpikingLayersCheaperOnCpu) {
  // The paper's observation that motivates heterogeneous mapping: LIF
  // layers utilize the GPU poorly; pinning them to the CPU wins even
  // after paying the transfers.
  CostFixture f;
  auto split = f.gpu_mapping;
  for (const auto& node : f.spec.graph.nodes()) {
    if (en::domain_of(node.spec.kind) == en::Domain::kSnn) {
      split.nodes[static_cast<std::size_t>(node.id)].pe =
          f.platform.first_pe(eh::PeKind::kCpu);
    }
  }
  ec::InferenceCostOptions opts;
  const auto gpu_only = ec::estimate_inference(
      f.spec, f.gpu_mapping, f.platform, f.densities, 0.1, opts);
  const auto snn_on_cpu = ec::estimate_inference(
      f.spec, split, f.platform, f.densities, 0.1, opts);
  EXPECT_LT(snn_on_cpu.latency_us, gpu_only.latency_us);
}

// --------------------------------------------------------------- pipeline

namespace {

ec::PipelineConfig baseline_config() {
  ec::PipelineConfig cfg;
  cfg.use_e2sf = false;
  cfg.use_dsfa = false;
  cfg.frame_rate_hz = 30.0;
  return cfg;
}

}  // namespace

TEST(Pipeline, DsfaReducesInferencesAndLatencyUnderBursts) {
  CostFixture f;
  const auto stream = make_stream(ee::SensorGeometry{44, 32}, 3'000'000, 3,
                                  "indoor2");
  auto base_cfg = baseline_config();
  base_cfg.use_e2sf = true;       // isolate the DSFA effect
  base_cfg.frame_rate_hz = 240.0;  // bin arrivals outpace the device
  const auto base = ec::simulate_pipeline(stream, f.spec, f.gpu_mapping,
                                          f.platform, f.densities, base_cfg);
  auto dsfa_cfg = base_cfg;
  dsfa_cfg.use_dsfa = true;
  const auto dsfa = ec::simulate_pipeline(stream, f.spec, f.gpu_mapping,
                                          f.platform, f.densities, dsfa_cfg);
  EXPECT_LT(dsfa.inferences, base.inferences);
  EXPECT_LT(dsfa.mean_latency_us, base.mean_latency_us);
  EXPECT_GT(dsfa.dsfa.buckets_dispatched, 0u);
  EXPECT_GT(dsfa.mean_batch, 1.0);
}

TEST(Pipeline, DsfaHarmlessWhenHardwareKeepsUp) {
  // At low frame rates the device is always idle; idle dispatch sends
  // every frame straight through and DSFA must not hurt latency.
  CostFixture f;
  const auto stream = make_stream(ee::SensorGeometry{44, 32}, 2'000'000, 3);
  auto base_cfg = baseline_config();
  base_cfg.use_e2sf = true;
  base_cfg.frame_rate_hz = 20.0;
  const auto base = ec::simulate_pipeline(stream, f.spec, f.gpu_mapping,
                                          f.platform, f.densities, base_cfg);
  auto dsfa_cfg = base_cfg;
  dsfa_cfg.use_dsfa = true;
  const auto dsfa = ec::simulate_pipeline(stream, f.spec, f.gpu_mapping,
                                          f.platform, f.densities, dsfa_cfg);
  EXPECT_LE(dsfa.mean_latency_us, base.mean_latency_us * 1.10);
}

TEST(Pipeline, E2sfBeatsDenseBaseline) {
  // Full-scale spec so the sparse routes actually engage (tiny layers
  // are launch-bound and run dense regardless); the stream still supplies
  // realistic timing/density, which is all the pipeline reads from it.
  FullScaleCostFixture f;
  const auto stream = make_stream(ee::SensorGeometry{44, 32}, 2'000'000, 5);
  const auto dense = ec::simulate_pipeline(stream, f.spec, f.gpu_mapping,
                                           f.platform, f.densities,
                                           baseline_config());
  auto e2sf_cfg = baseline_config();
  e2sf_cfg.use_e2sf = true;
  const auto sparse = ec::simulate_pipeline(stream, f.spec, f.gpu_mapping,
                                            f.platform, f.densities,
                                            e2sf_cfg);
  EXPECT_LT(sparse.mean_service_per_frame_us,
            dense.mean_service_per_frame_us);
  EXPECT_LT(sparse.total_energy_mj, dense.total_energy_mj);
}

TEST(Pipeline, FrameAccounting) {
  CostFixture f;
  const auto stream = make_stream(ee::SensorGeometry{44, 32}, 1'000'000, 7);
  const auto stats = ec::simulate_pipeline(stream, f.spec, f.gpu_mapping,
                                           f.platform, f.densities,
                                           baseline_config());
  // 30 fps over 1 s, 5 bins per interval.
  EXPECT_GT(stats.frames_generated, 100u);
  EXPECT_EQ(stats.inferences, stats.frames_generated);
  EXPECT_GT(stats.mean_input_density, 0.0);
  EXPECT_GT(stats.sim_span_us, 0.0);
}

TEST(Pipeline, IdleDispatchImprovesLatency) {
  CostFixture f;
  const auto stream = make_stream(ee::SensorGeometry{44, 32}, 3'000'000, 9,
                                  "indoor2");
  auto cfg = baseline_config();
  cfg.use_e2sf = true;
  cfg.use_dsfa = true;
  cfg.idle_dispatch = true;
  const auto with_idle = ec::simulate_pipeline(
      stream, f.spec, f.gpu_mapping, f.platform, f.densities, cfg);
  cfg.idle_dispatch = false;
  const auto without_idle = ec::simulate_pipeline(
      stream, f.spec, f.gpu_mapping, f.platform, f.densities, cfg);
  EXPECT_LE(with_idle.mean_latency_us,
            without_idle.mean_latency_us * 1.001);
}

// --------------------------------------------------------- e2e accuracy

TEST(E2eAccuracy, NoOptimizationsMeansNoDegradation) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  const auto stream = make_stream(
      ee::SensorGeometry{spec.graph.node(0).spec.out_shape.w,
                         spec.graph.node(0).spec.out_shape.h},
      400'000, 15);
  ec::E2eAccuracyConfig cfg;
  cfg.apply_dsfa = false;  // no merging, no quantization
  cfg.max_intervals = 2;
  const auto result = ec::evaluate_e2e_accuracy(spec, stream, cfg);
  EXPECT_DOUBLE_EQ(result.measured_degradation, 0.0);
  EXPECT_DOUBLE_EQ(result.evedge_metric, result.baseline_metric);
}

TEST(E2eAccuracy, DsfaMergingDegradesSlightly) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  const auto stream = make_stream(
      ee::SensorGeometry{spec.graph.node(0).spec.out_shape.w,
                         spec.graph.node(0).spec.out_shape.h},
      400'000, 17);
  ec::E2eAccuracyConfig cfg;
  cfg.apply_dsfa = true;
  cfg.dsfa.merge_bucket_capacity = 3;
  cfg.dsfa.max_time_delay_us = 1e9;
  cfg.dsfa.max_density_change = 1e9;
  cfg.max_intervals = 2;
  const auto result = ec::evaluate_e2e_accuracy(spec, stream, cfg);
  EXPECT_GT(result.measured_degradation, 0.0);
  EXPECT_GT(result.evedge_metric, result.baseline_metric);  // AEE: worse
  // ... but by a modest amount (Table 2's story).
  EXPECT_LT(result.measured_degradation, 1.0);
}

TEST(E2eAccuracy, Int8EngineCrossCheckTracksFakeQuant) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  const auto stream = make_stream(
      ee::SensorGeometry{spec.graph.node(0).spec.out_shape.w,
                         spec.graph.node(0).spec.out_shape.h},
      400'000, 21);
  ec::E2eAccuracyConfig cfg;
  cfg.apply_dsfa = false;  // isolate the quantization effect
  cfg.max_intervals = 2;
  cfg.precisions =
      evedge::quant::uniform_assignment(spec, evedge::quant::Precision::kInt8);
  cfg.int8_engine_cross_check = true;
  const auto result = ec::evaluate_e2e_accuracy(spec, stream, cfg);
  ASSERT_TRUE(result.has_int8_cross_check);
  // Both substrates degrade (quantization is real) by a modest amount,
  // and the real engine's story matches the modelled one to first order.
  EXPECT_GT(result.measured_degradation, 0.0);
  EXPECT_GT(result.measured_degradation_int8, 0.0);
  EXPECT_LT(result.measured_degradation_int8, 1.0);
  EXPECT_LT(std::abs(result.measured_degradation_int8 -
                     result.measured_degradation),
            0.25);
  // Direction of the anchored metric shift agrees.
  EXPECT_GT(result.evedge_metric_int8, result.baseline_metric);
}

TEST(E2eAccuracy, ReslotPreservesMassUnderCAdd) {
  const ee::SensorGeometry g{24, 18};
  const auto stream = make_stream(g, 400'000, 19);
  const ec::Event2SparseFrame e2sf(g, ec::E2sfConfig{5});
  const auto bins = e2sf.convert(stream.slice(0, 100'000), 0, 100'000);
  ec::DsfaConfig cfg;
  cfg.merge_bucket_capacity = 3;
  cfg.max_time_delay_us = 1e9;
  cfg.max_density_change = 1e9;
  const auto slots = ec::reslot_merged_frames(bins, cfg);
  ASSERT_EQ(slots.size(), bins.size());
  double mass_in = 0.0;
  double mass_out = 0.0;
  for (const auto& b : bins) mass_in += b.event_mass();
  for (const auto& s : slots) mass_out += s.event_mass();
  EXPECT_NEAR(mass_out, mass_in, 1e-6);
}

TEST(E2eAccuracy, CBatchReslotIsIdentity) {
  const ee::SensorGeometry g{24, 18};
  const auto stream = make_stream(g, 400'000, 23);
  const ec::Event2SparseFrame e2sf(g, ec::E2sfConfig{5});
  const auto bins = e2sf.convert(stream.slice(0, 100'000), 0, 100'000);
  ec::DsfaConfig cfg;
  cfg.merge_mode = es::MergeMode::kBatch;
  const auto slots = ec::reslot_merged_frames(bins, cfg);
  ASSERT_EQ(slots.size(), bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    EXPECT_FLOAT_EQ(
        es::max_abs_diff(slots[i].to_dense(), bins[i].to_dense()), 0.0f);
  }
}

// --------------------------------------------------------- batch executor

TEST(BatchExecutor, RunsDispatchedBatchesOnTheBatchedEngine) {
  CostFixture f;
  en::FunctionalNetwork net(f.spec, 7);
  ec::BatchExecutor executor(net);

  // Frames at a larger sensor geometry than the network input: the
  // executor downsamples and center-aligns them.
  const auto stream = make_stream(ee::SensorGeometry{88, 64}, 600'000, 3);
  const ec::Event2SparseFrame e2sf(stream.geometry(), ec::E2sfConfig{});
  const auto clock = ee::FrameClock::uniform(stream.t_begin(), 100'000, 6);
  const auto intervals = e2sf.convert_stream(stream, clock);
  std::vector<es::SparseFrame> frames;
  for (const auto& interval : intervals) {
    for (const auto& frame : interval) frames.push_back(frame);
  }
  ASSERT_GE(frames.size(), 3u);

  const std::vector<es::SparseFrame> batch(frames.begin(),
                                           frames.begin() + 3);
  const auto& out = executor.execute(batch);
  EXPECT_EQ(out.shape().n, 3);
  for (float v : out.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(executor.stats().batches, 1u);
  EXPECT_EQ(executor.stats().samples, 3u);
  EXPECT_GT(executor.stats().wall_ms, 0.0);
  EXPECT_THROW((void)executor.execute({}), std::invalid_argument);
}

TEST(Pipeline, ExecutorRoutesEveryDispatchedBatch) {
  CostFixture f;
  en::FunctionalNetwork net(f.spec, 7);
  ec::BatchExecutor executor(net);
  const auto stream = make_stream(ee::SensorGeometry{44, 32}, 1'000'000, 3);

  auto cfg = baseline_config();
  cfg.use_e2sf = true;
  cfg.use_dsfa = true;
  cfg.executor = &executor;
  const auto stats = ec::simulate_pipeline(stream, f.spec, f.gpu_mapping,
                                           f.platform, f.densities, cfg);
  EXPECT_EQ(stats.functional_batches, stats.inferences);
  EXPECT_EQ(stats.functional_samples, stats.buckets_completed);
  EXPECT_EQ(executor.stats().batches, stats.functional_batches);
  EXPECT_GT(stats.functional_wall_ms, 0.0);

  // Without an executor the functional counters stay zero.
  cfg.executor = nullptr;
  const auto plain = ec::simulate_pipeline(stream, f.spec, f.gpu_mapping,
                                           f.platform, f.densities, cfg);
  EXPECT_EQ(plain.functional_batches, 0u);
  EXPECT_EQ(plain.functional_wall_ms, 0.0);
}
