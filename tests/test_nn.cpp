// Tests for the nn substrate: dense kernels (including cross-validation
// against the sparse kernels), LIF dynamics, graph construction, the
// network zoo (Table 1 layer counts) and the functional engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <stdexcept>
#include <tuple>

#include "nn/engine.hpp"
#include "nn/graph.hpp"
#include "nn/kernels.hpp"
#include "nn/lif.hpp"
#include "nn/zoo.hpp"
#include "sparse/sparse_ops.hpp"

namespace en = evedge::nn;
namespace es = evedge::sparse;

// ----------------------------------------------------------- dense kernels

TEST(Kernels, ConvIdentityKernelPreservesInput) {
  es::DenseTensor in(es::TensorShape{1, 1, 5, 5});
  in.fill_random(1);
  es::DenseTensor w(es::TensorShape{1, 1, 1, 1});
  w.at(0, 0, 0, 0) = 1.0f;
  const auto out = en::conv2d(in, w, {}, es::Conv2dSpec{1, 1, 1, 1, 0});
  EXPECT_FLOAT_EQ(es::max_abs_diff(out, in), 0.0f);
}

TEST(Kernels, ConvAveragingKernel) {
  es::DenseTensor in(es::TensorShape{1, 1, 3, 3}, 1.0f);
  es::DenseTensor w(es::TensorShape{1, 1, 3, 3}, 1.0f / 9.0f);
  const auto out = en::conv2d(in, w, {}, es::Conv2dSpec{1, 1, 3, 1, 1});
  // Center pixel sees all nine ones.
  EXPECT_NEAR(out.at(0, 0, 1, 1), 1.0f, 1e-6f);
  // Corner sees four.
  EXPECT_NEAR(out.at(0, 0, 0, 0), 4.0f / 9.0f, 1e-6f);
}

TEST(Kernels, ConvBiasApplied) {
  es::DenseTensor in(es::TensorShape{1, 1, 2, 2});
  es::DenseTensor w(es::TensorShape{2, 1, 1, 1});
  const std::vector<float> bias{0.5f, -1.5f};
  const auto out = en::conv2d(in, w, bias, es::Conv2dSpec{1, 2, 1, 1, 0});
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 0.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1, 1), -1.5f);
}

TEST(Kernels, SparseConvMatchesDenseConv) {
  // The core E2SF claim depends on this equivalence.
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<int> coord(0, 11);
  for (const auto& [k, s, p] :
       {std::tuple{3, 1, 1}, std::tuple{3, 2, 1}, std::tuple{5, 1, 2}}) {
    const es::Conv2dSpec spec{2, 6, k, s, p};
    es::DenseTensor w(es::TensorShape{6, 2, k, k});
    w.fill_random(23);
    const std::vector<float> bias{0.1f, -0.2f, 0.3f, 0.0f, 0.7f, -0.4f};

    es::DenseTensor dense_in(es::TensorShape{1, 2, 12, 12});
    std::vector<es::CooEntry> pos, neg;
    for (int i = 0; i < 25; ++i) {
      const int y = coord(rng);
      const int x = coord(rng);
      dense_in.at(0, 0, y, x) += 1.0f;
      pos.push_back({y, x, 1.0f});
    }
    for (int i = 0; i < 15; ++i) {
      const int y = coord(rng);
      const int x = coord(rng);
      dense_in.at(0, 1, y, x) += 1.0f;
      neg.push_back({y, x, 1.0f});
    }
    std::vector<es::CooChannel> sparse_in{
        es::CooChannel::from_entries(12, 12, pos),
        es::CooChannel::from_entries(12, 12, neg)};

    const auto y_dense = en::conv2d(dense_in, w, bias, spec);
    const auto y_sparse = es::sparse_conv2d(sparse_in, w, bias, spec);
    EXPECT_LT(es::max_abs_diff(y_dense, y_sparse), 1e-4f)
        << "k=" << k << " s=" << s << " p=" << p;
  }
}

TEST(Kernels, SubmanifoldMatchesDenseAtActiveSites) {
  const es::Conv2dSpec spec{2, 4, 3, 1, 1};
  es::DenseTensor w(es::TensorShape{4, 2, 3, 3});
  w.fill_random(29);
  std::mt19937_64 rng(31);
  std::uniform_int_distribution<int> coord(0, 9);
  es::DenseTensor dense_in(es::TensorShape{1, 2, 10, 10});
  std::vector<es::CooEntry> pos;
  for (int i = 0; i < 14; ++i) {
    const int y = coord(rng);
    const int x = coord(rng);
    dense_in.at(0, 0, y, x) += 1.0f;
    pos.push_back({y, x, 1.0f});
  }
  std::vector<es::CooChannel> in{es::CooChannel::from_entries(10, 10, pos),
                                 es::CooChannel(10, 10)};
  const auto y_dense = en::conv2d(dense_in, w, {}, spec);
  const auto y_sub = es::submanifold_conv2d(in, w, {}, spec);
  for (const auto& ch : y_sub) {
    EXPECT_EQ(ch.height(), 10);
  }
  for (int oc = 0; oc < 4; ++oc) {
    for (const auto& e : y_sub[static_cast<std::size_t>(oc)].entries()) {
      EXPECT_NEAR(e.value, y_dense.at(0, oc, e.row, e.col), 1e-4f);
    }
  }
}

TEST(Kernels, TransposedConvUpsamples) {
  es::DenseTensor in(es::TensorShape{1, 1, 4, 4}, 1.0f);
  es::DenseTensor w(es::TensorShape{1, 1, 4, 4}, 0.25f);
  const auto out =
      en::transposed_conv2d(in, w, {}, es::Conv2dSpec{1, 1, 4, 2, 1});
  EXPECT_EQ(out.shape().h, 8);
  EXPECT_EQ(out.shape().w, 8);
}

TEST(Kernels, TransposedConvAdjointOfConv) {
  // <conv(x), y> == <x, tconv(y)> for matching geometry (adjoint
  // property of correlation/convolution pairs with shared weights).
  const es::Conv2dSpec spec{1, 1, 3, 1, 1};
  es::DenseTensor w(es::TensorShape{1, 1, 3, 3});
  w.fill_random(37);
  es::DenseTensor x(es::TensorShape{1, 1, 6, 6});
  x.fill_random(38);
  es::DenseTensor y(es::TensorShape{1, 1, 6, 6});
  y.fill_random(39);

  const auto cx = en::conv2d(x, w, {}, spec);
  // conv2d computes cross-correlation, whose adjoint is the transposed-
  // conv scatter with the *same* (unflipped) weights.
  const auto ty = en::transposed_conv2d(y, w, {}, spec);
  double lhs = 0.0;
  double rhs = 0.0;
  for (std::size_t i = 0; i < cx.size(); ++i) {
    lhs += static_cast<double>(cx.data()[i]) *
           static_cast<double>(y.data()[i]);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x.data()[i]) *
           static_cast<double>(ty.data()[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Kernels, PoolingReducesAndPreservesExtrema) {
  es::DenseTensor in(es::TensorShape{1, 1, 4, 4});
  in.fill_random(41);
  const auto mp = en::max_pool(in, 2);
  const auto ap = en::avg_pool(in, 2);
  EXPECT_EQ(mp.shape().h, 2);
  EXPECT_EQ(ap.shape().w, 2);
  float max_in = -1e30f;
  for (float v : in.data()) max_in = std::max(max_in, v);
  float max_mp = -1e30f;
  for (float v : mp.data()) max_mp = std::max(max_mp, v);
  EXPECT_FLOAT_EQ(max_mp, max_in);
  // Average pool preserves the mean.
  double mean_in = 0.0;
  for (float v : in.data()) mean_in += v;
  double mean_ap = 0.0;
  for (float v : ap.data()) mean_ap += v;
  EXPECT_NEAR(mean_in / 16.0, mean_ap / 4.0, 1e-5);
}

TEST(Kernels, ReluClampsNegatives) {
  es::DenseTensor t(es::TensorShape{1, 1, 1, 4});
  t.at(0, 0, 0, 0) = -1.0f;
  t.at(0, 0, 0, 1) = 2.0f;
  t.at(0, 0, 0, 2) = -0.5f;
  t.at(0, 0, 0, 3) = 0.0f;
  en::relu_inplace(t);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0, 2), 0.0f);
}

TEST(Kernels, ConcatAndCrop) {
  es::DenseTensor a(es::TensorShape{1, 2, 4, 4}, 1.0f);
  es::DenseTensor b(es::TensorShape{1, 3, 4, 4}, 2.0f);
  const auto c = en::concat_channels(a, b);
  EXPECT_EQ(c.shape().c, 5);
  EXPECT_FLOAT_EQ(c.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 4, 3, 3), 2.0f);
  const auto cropped = en::center_crop(c, 2, 2);
  EXPECT_EQ(cropped.shape().h, 2);
  EXPECT_THROW((void)en::center_crop(c, 10, 2), std::invalid_argument);
}

TEST(Kernels, UpsampleNearestReplicates) {
  es::DenseTensor in(es::TensorShape{1, 1, 2, 2});
  in.at(0, 0, 0, 0) = 1.0f;
  in.at(0, 0, 0, 1) = 2.0f;
  in.at(0, 0, 1, 0) = 3.0f;
  in.at(0, 0, 1, 1) = 4.0f;
  const auto up = en::upsample_nearest(in, 2);
  EXPECT_FLOAT_EQ(up.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(up.at(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(up.at(0, 0, 0, 2), 2.0f);
  EXPECT_FLOAT_EQ(up.at(0, 0, 3, 3), 4.0f);
}

TEST(Kernels, FullyConnectedMatchesManual) {
  es::DenseTensor in(es::TensorShape{1, 1, 1, 3});
  in.at(0, 0, 0, 0) = 1.0f;
  in.at(0, 0, 0, 1) = 2.0f;
  in.at(0, 0, 0, 2) = 3.0f;
  es::DenseTensor w(es::TensorShape{2, 3, 1, 1});
  // out0 = 1*1 + 2*2 + 3*3 = 14; out1 = -1 -2 -3 = -6
  w.at(0, 0, 0, 0) = 1.0f;
  w.at(0, 1, 0, 0) = 2.0f;
  w.at(0, 2, 0, 0) = 3.0f;
  w.at(1, 0, 0, 0) = -1.0f;
  w.at(1, 1, 0, 0) = -1.0f;
  w.at(1, 2, 0, 0) = -1.0f;
  const auto out = en::fully_connected(in, w, {});
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 14.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), -6.0f);
}

// ------------------------------------------------------------------- LIF

TEST(Lif, NoSpikeBelowThreshold) {
  en::LifState lif(es::TensorShape{1, 1, 1, 1}, en::LifParams{0.9f, 1.0f});
  es::DenseTensor in(es::TensorShape{1, 1, 1, 1});
  in.at(0, 0, 0, 0) = 0.3f;
  const auto s1 = lif.step(in);
  EXPECT_FLOAT_EQ(s1.at(0, 0, 0, 0), 0.0f);
}

TEST(Lif, IntegrationReachesThreshold) {
  // 0.3 per step with leak 1.0 crosses vth=1.0 on the fourth step.
  en::LifState lif(es::TensorShape{1, 1, 1, 1}, en::LifParams{1.0f, 1.0f});
  es::DenseTensor in(es::TensorShape{1, 1, 1, 1});
  in.at(0, 0, 0, 0) = 0.3f;
  int spike_step = -1;
  for (int t = 0; t < 6; ++t) {
    const auto s = lif.step(in);
    if (s.at(0, 0, 0, 0) > 0.0f && spike_step < 0) spike_step = t;
  }
  EXPECT_EQ(spike_step, 3);
}

TEST(Lif, SoftResetKeepsResidual) {
  en::LifState lif(es::TensorShape{1, 1, 1, 1},
                   en::LifParams{1.0f, 1.0f, true});
  es::DenseTensor in(es::TensorShape{1, 1, 1, 1});
  in.at(0, 0, 0, 0) = 1.25f;
  (void)lif.step(in);
  EXPECT_NEAR(lif.membrane().at(0, 0, 0, 0), 0.25f, 1e-6f);
}

TEST(Lif, HardResetZeroes) {
  en::LifState lif(es::TensorShape{1, 1, 1, 1},
                   en::LifParams{1.0f, 1.0f, false});
  es::DenseTensor in(es::TensorShape{1, 1, 1, 1});
  in.at(0, 0, 0, 0) = 1.25f;
  (void)lif.step(in);
  EXPECT_FLOAT_EQ(lif.membrane().at(0, 0, 0, 0), 0.0f);
}

TEST(Lif, LeakDecaysMembrane) {
  en::LifState lif(es::TensorShape{1, 1, 1, 1}, en::LifParams{0.5f, 10.0f});
  es::DenseTensor in(es::TensorShape{1, 1, 1, 1});
  in.at(0, 0, 0, 0) = 1.0f;
  (void)lif.step(in);  // U = 1
  in.at(0, 0, 0, 0) = 0.0f;
  (void)lif.step(in);  // U = 0.5
  EXPECT_NEAR(lif.membrane().at(0, 0, 0, 0), 0.5f, 1e-6f);
}

TEST(Lif, FiringRateAccounting) {
  en::LifState lif(es::TensorShape{1, 1, 2, 2}, en::LifParams{1.0f, 0.5f});
  es::DenseTensor in(es::TensorShape{1, 1, 2, 2}, 1.0f);
  (void)lif.step(in);  // all 4 sites fire
  EXPECT_NEAR(lif.mean_firing_rate(), 1.0, 1e-9);
  lif.reset();
  EXPECT_NEAR(lif.mean_firing_rate(), 0.0, 1e-9);
}

TEST(Lif, PerChannelParamsValidated) {
  EXPECT_THROW(en::LifState(es::TensorShape{1, 2, 1, 1},
                            en::LifParams{0.9f, 1.0f}, {0.5f}),
               std::invalid_argument);
  EXPECT_THROW(en::LifState(es::TensorShape{1, 2, 1, 1},
                            en::LifParams{0.9f, 1.0f}, {0.5f, 1.5f}),
               std::invalid_argument);
}

// ------------------------------------------------------------------ graph

TEST(Graph, ShapeInferenceThroughEncoder) {
  en::NetworkGraph g;
  const int in = g.add_input("in", es::TensorShape{1, 2, 32, 44});
  en::LayerSpec c;
  c.name = "conv";
  c.kind = en::LayerKind::kConv;
  c.conv = es::Conv2dSpec{2, 8, 3, 2, 1};
  const int l1 = g.add_layer(c, {in});
  EXPECT_EQ(g.node(l1).spec.out_shape.c, 8);
  EXPECT_EQ(g.node(l1).spec.out_shape.h, 16);
  EXPECT_EQ(g.node(l1).spec.out_shape.w, 22);
}

TEST(Graph, RejectsChannelMismatch) {
  en::NetworkGraph g;
  const int in = g.add_input("in", es::TensorShape{1, 2, 16, 16});
  en::LayerSpec c;
  c.kind = en::LayerKind::kConv;
  c.conv = es::Conv2dSpec{4, 8, 3, 1, 1};  // expects 4 channels, input has 2
  EXPECT_THROW(g.add_layer(c, {in}), std::invalid_argument);
}

TEST(Graph, RejectsBadParents) {
  en::NetworkGraph g;
  const int in = g.add_input("in", es::TensorShape{1, 2, 16, 16});
  en::LayerSpec c;
  c.kind = en::LayerKind::kConcat;
  EXPECT_THROW(g.add_layer(c, {in}), std::invalid_argument);  // needs 2
  EXPECT_THROW(g.add_layer(c, {in, 99}), std::invalid_argument);
}

TEST(Graph, MacsMatchHandComputation) {
  en::NetworkGraph g;
  const int in = g.add_input("in", es::TensorShape{1, 2, 16, 16});
  en::LayerSpec c;
  c.kind = en::LayerKind::kConv;
  c.conv = es::Conv2dSpec{2, 4, 3, 1, 1};
  const int l = g.add_layer(c, {in});
  // 16*16 outputs * 4 out_c * 2 in_c * 9 taps
  EXPECT_EQ(g.node(l).spec.macs(), 16u * 16u * 4u * 2u * 9u);
}

// -------------------------------------------------------------------- zoo

struct ZooCase {
  en::NetworkId id;
  int layers;
  int snn;
  int ann;
  const char* type;
};

class ZooTable1 : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooTable1, LayerCountsMatchPaper) {
  const ZooCase& c = GetParam();
  const auto net = en::build_network(c.id, en::ZooConfig::test_scale());
  EXPECT_EQ(net.weight_layer_count(), c.layers) << net.name;
  EXPECT_EQ(net.snn_layer_count(), c.snn) << net.name;
  EXPECT_EQ(net.ann_layer_count(), c.ann) << net.name;
  EXPECT_EQ(net.type_string(), c.type) << net.name;
  EXPECT_NO_THROW(net.graph.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Table1, ZooTable1,
    ::testing::Values(
        ZooCase{en::NetworkId::kSpikeFlowNet, 12, 4, 8, "SNN-ANN"},
        ZooCase{en::NetworkId::kFusionFlowNet, 29, 10, 19, "SNN-ANN"},
        ZooCase{en::NetworkId::kAdaptiveSpikeNet, 8, 8, 0, "SNN"},
        ZooCase{en::NetworkId::kHalsie, 16, 3, 13, "SNN-ANN"},
        ZooCase{en::NetworkId::kHidalgoDepth, 15, 0, 15, "ANN"},
        ZooCase{en::NetworkId::kDotie, 1, 1, 0, "SNN"},
        ZooCase{en::NetworkId::kEvFlowNet, 14, 0, 14, "ANN"}),
    [](const ::testing::TestParamInfo<ZooCase>& param_info) {
      auto name = en::to_string(param_info.param.id);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Zoo, FullScaleMacsAreRealistic) {
  // Full-scale descriptors must land in the 0.1-100 GMAC/inference range
  // typical for these architectures.
  for (const auto id : en::table1_networks()) {
    const auto net = en::build_network(id, en::ZooConfig::full_scale());
    const double gmacs =
        static_cast<double>(net.graph.total_macs()) / 1e9 *
        net.timesteps;
    EXPECT_GT(gmacs, 0.0005) << net.name;
    EXPECT_LT(gmacs, 200.0) << net.name;
  }
}

TEST(Zoo, MultiTaskConfigsMatchPaper) {
  EXPECT_EQ(en::multi_task_all_ann().networks.size(), 2u);
  EXPECT_EQ(en::multi_task_all_snn().networks.size(), 2u);
  EXPECT_EQ(en::multi_task_mixed().networks.size(), 4u);
  // all-ANN must contain only ANN networks, all-SNN only SNNs.
  for (const auto id : en::multi_task_all_ann().networks) {
    const auto net = en::build_network(id, en::ZooConfig::test_scale());
    EXPECT_EQ(net.snn_layer_count(), 0) << net.name;
  }
  for (const auto id : en::multi_task_all_snn().networks) {
    const auto net = en::build_network(id, en::ZooConfig::test_scale());
    EXPECT_EQ(net.ann_layer_count(), 0) << net.name;
  }
}

// ----------------------------------------------------------------- engine

namespace {

std::vector<es::DenseTensor> synthetic_steps(const en::NetworkSpec& net,
                                             std::uint64_t seed) {
  const auto in_shape =
      net.graph.node(net.graph.input_ids().front()).spec.out_shape;
  std::vector<es::DenseTensor> steps;
  std::mt19937_64 rng(seed);
  for (int t = 0; t < net.timesteps; ++t) {
    es::DenseTensor frame(in_shape);
    // Sparse spike-like input: ~10% of sites get small counts.
    std::uniform_real_distribution<float> unit(0.0f, 1.0f);
    for (float& v : frame.data()) {
      const float u = unit(rng);
      if (u > 0.9f) v = std::floor(u * 30.0f) - 26.0f;  // 1..3
    }
    steps.push_back(std::move(frame));
  }
  return steps;
}

es::DenseTensor synthetic_image(const en::NetworkSpec& net) {
  const auto ids = net.graph.input_ids();
  const auto shape = net.graph.node(ids.back()).spec.out_shape;
  es::DenseTensor img(shape);
  img.fill_random(1234, 0.5f);
  for (float& v : img.data()) v = std::abs(v);
  return img;
}

}  // namespace

class EngineRuns : public ::testing::TestWithParam<en::NetworkId> {};

TEST_P(EngineRuns, ProducesFiniteOutputOfExpectedShape) {
  const auto net_spec =
      en::build_network(GetParam(), en::ZooConfig::test_scale());
  en::FunctionalNetwork net(net_spec, 7);
  const auto steps = synthetic_steps(net_spec, 11);
  const bool needs_image = net_spec.graph.input_ids().size() > 1;
  const auto image = synthetic_image(net_spec);
  const auto out = net.run(steps, needs_image ? &image : nullptr);

  EXPECT_EQ(out.shape().n, 1);
  switch (net_spec.task) {
    case en::TaskKind::kOpticalFlow:
      EXPECT_EQ(out.shape().c, 2);
      break;
    case en::TaskKind::kSegmentation:
      EXPECT_EQ(out.shape().c, 6);
      break;
    case en::TaskKind::kDepth:
    case en::TaskKind::kTracking:
      EXPECT_EQ(out.shape().c, 1);
      break;
  }
  for (float v : out.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_P(EngineRuns, DeterministicAcrossRuns) {
  const auto net_spec =
      en::build_network(GetParam(), en::ZooConfig::test_scale());
  en::FunctionalNetwork a(net_spec, 7);
  en::FunctionalNetwork b(net_spec, 7);
  const auto steps = synthetic_steps(net_spec, 11);
  const bool needs_image = net_spec.graph.input_ids().size() > 1;
  const auto image = synthetic_image(net_spec);
  const auto oa = a.run(steps, needs_image ? &image : nullptr);
  const auto ob = b.run(steps, needs_image ? &image : nullptr);
  EXPECT_FLOAT_EQ(es::max_abs_diff(oa, ob), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, EngineRuns,
    ::testing::Values(en::NetworkId::kSpikeFlowNet,
                      en::NetworkId::kFusionFlowNet,
                      en::NetworkId::kAdaptiveSpikeNet,
                      en::NetworkId::kHalsie, en::NetworkId::kHidalgoDepth,
                      en::NetworkId::kDotie, en::NetworkId::kEvFlowNet),
    [](const ::testing::TestParamInfo<en::NetworkId>& param_info) {
      auto name = en::to_string(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Engine, SpikingLayersActuallySpike) {
  // If SNN layers are silent the accuracy experiments degenerate; pin
  // a healthy firing regime on the hybrid and pure-SNN networks.
  for (const auto id :
       {en::NetworkId::kSpikeFlowNet, en::NetworkId::kAdaptiveSpikeNet}) {
    const auto net_spec = en::build_network(id, en::ZooConfig::test_scale());
    en::FunctionalNetwork net(net_spec, 7);
    const auto steps = synthetic_steps(net_spec, 13);
    (void)net.run(steps);
    EXPECT_GT(net.network_firing_rate(), 0.001)
        << en::to_string(id) << " is silent";
    EXPECT_LT(net.network_firing_rate(), 0.9)
        << en::to_string(id) << " saturates";
  }
}

TEST(Engine, OutputRespondsToInput) {
  const auto net_spec =
      en::build_network(en::NetworkId::kEvFlowNet, en::ZooConfig::test_scale());
  en::FunctionalNetwork net(net_spec, 7);
  const auto steps_a = synthetic_steps(net_spec, 1);
  const auto steps_b = synthetic_steps(net_spec, 2);
  const auto oa = net.run(steps_a);
  const auto ob = net.run(steps_b);
  EXPECT_GT(es::max_abs_diff(oa, ob), 0.0f);
}

TEST(Engine, ActivationHookObservesEveryComputeNode) {
  const auto net_spec =
      en::build_network(en::NetworkId::kSpikeFlowNet,
                        en::ZooConfig::test_scale());
  en::FunctionalNetwork net(net_spec, 7);
  std::set<int> seen;
  net.set_activation_hook(
      [&seen](int id, es::DenseTensor&) { seen.insert(id); });
  const auto steps = synthetic_steps(net_spec, 11);
  (void)net.run(steps);
  int compute_nodes = 0;
  for (const auto& n : net_spec.graph.nodes()) {
    if (n.spec.kind != en::LayerKind::kInput &&
        n.spec.kind != en::LayerKind::kOutput) {
      ++compute_nodes;
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), compute_nodes);
}

TEST(Engine, HookCanPerturbOutputs) {
  const auto net_spec = en::build_network(en::NetworkId::kHidalgoDepth,
                                          en::ZooConfig::test_scale());
  en::FunctionalNetwork net(net_spec, 7);
  const auto steps = synthetic_steps(net_spec, 11);
  const auto clean = net.run(steps);
  net.set_activation_hook([](int, es::DenseTensor& t) {
    for (float& v : t.data()) v *= 1.01f;
  });
  const auto perturbed = net.run(steps);
  EXPECT_GT(es::max_abs_diff(clean, perturbed), 0.0f);
}

TEST(Engine, MissingImageInputThrows) {
  const auto net_spec =
      en::build_network(en::NetworkId::kHalsie, en::ZooConfig::test_scale());
  en::FunctionalNetwork net(net_spec, 7);
  const auto steps = synthetic_steps(net_spec, 11);
  EXPECT_THROW((void)net.run(steps), std::invalid_argument);
}

TEST(Engine, WrongTimestepCountThrows) {
  const auto net_spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  en::FunctionalNetwork net(net_spec, 7);
  std::vector<es::DenseTensor> too_few;
  EXPECT_THROW((void)net.run(too_few), std::invalid_argument);
}

// ------------------------------------------ batched engine + workspace

namespace {

/// Stacks per-sample timestep tensors [1, C, H, W] into batched steps
/// [N, C, H, W].
std::vector<es::DenseTensor> stack_steps(
    const std::vector<std::vector<es::DenseTensor>>& per_sample) {
  const auto& first = per_sample.front();
  std::vector<es::DenseTensor> batched;
  for (std::size_t t = 0; t < first.size(); ++t) {
    const auto& s = first[t].shape();
    es::DenseTensor step(es::TensorShape{
        static_cast<int>(per_sample.size()), s.c, s.h, s.w});
    for (std::size_t n = 0; n < per_sample.size(); ++n) {
      const auto& src = per_sample[n][t];
      std::copy(src.data().begin(), src.data().end(),
                step.raw() + n * step.stride_n());
    }
    batched.push_back(std::move(step));
  }
  return batched;
}

}  // namespace

// run_batched over a stacked batch must be bitwise identical to run()
// over each sample alone — for every zoo network, spiking state included.
TEST_P(EngineRuns, BatchedRunBitMatchesPerSample) {
  const auto net_spec =
      en::build_network(GetParam(), en::ZooConfig::test_scale());
  en::FunctionalNetwork net(net_spec, 7);
  const bool needs_image = net_spec.graph.input_ids().size() > 1;
  const auto image = synthetic_image(net_spec);

  constexpr int kBatch = 3;
  std::vector<std::vector<es::DenseTensor>> per_sample;
  std::vector<es::DenseTensor> expected;
  for (int n = 0; n < kBatch; ++n) {
    per_sample.push_back(
        synthetic_steps(net_spec, 11 + static_cast<std::uint64_t>(n)));
    expected.push_back(net.run(per_sample.back(),
                               needs_image ? &image : nullptr));
  }

  const auto batched_steps = stack_steps(per_sample);
  const auto out =
      net.run_batched(batched_steps, needs_image ? &image : nullptr);
  ASSERT_EQ(out.shape().n, kBatch);
  for (int n = 0; n < kBatch; ++n) {
    const auto& ref = expected[static_cast<std::size_t>(n)];
    ASSERT_EQ(out.stride_n(), ref.stride_n());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(out.data()[n * out.stride_n() + i], ref.data()[i])
          << "sample " << n << " element " << i;
    }
  }

  // Batch-1 still works after a batched run (LIF state re-shapes back).
  const auto again = net.run(per_sample.front(),
                             needs_image ? &image : nullptr);
  EXPECT_FLOAT_EQ(es::max_abs_diff(again, expected.front()), 0.0f);
}

// Repeated run() calls on one network reuse the workspace and value
// buffers and keep producing identical results; the arena stops growing
// once warm.
TEST(Engine, WorkspaceReuseAcrossRepeatedRuns) {
  const auto net_spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                          en::ZooConfig::test_scale());
  en::FunctionalNetwork net(net_spec, 7);
  const auto steps = synthetic_steps(net_spec, 11);
  const auto first = net.run(steps);
  const std::size_t warm_bytes = net.workspace().retained_bytes();
  for (int i = 0; i < 3; ++i) {
    const auto again = net.run(steps);
    EXPECT_FLOAT_EQ(es::max_abs_diff(again, first), 0.0f);
  }
  EXPECT_EQ(net.workspace().retained_bytes(), warm_bytes);
}

TEST(Kernels, Conv2dIntoMatchesConv2dAndReusesBuffer) {
  const es::Conv2dSpec spec{3, 8, 3, 1, 1};
  es::DenseTensor in(es::TensorShape{2, 3, 16, 20});
  in.fill_random(61);
  es::DenseTensor w(es::TensorShape{8, 3, 3, 3});
  w.fill_random(62, 0.3f);
  const std::vector<float> bias{0.1f, -0.1f, 0.2f, -0.2f,
                                0.3f, -0.3f, 0.4f, -0.4f};

  const auto expected = en::conv2d(in, w, bias, spec);
  es::Workspace ws;
  es::DenseTensor out;
  en::conv2d_into(in, w, bias, spec, out, &ws);
  EXPECT_FLOAT_EQ(es::max_abs_diff(out, expected), 0.0f);
  const float* buffer = out.raw();
  en::conv2d_into(in, w, bias, spec, out, &ws);  // same shape: no realloc
  EXPECT_EQ(out.raw(), buffer);
  EXPECT_FLOAT_EQ(es::max_abs_diff(out, expected), 0.0f);
  EXPECT_THROW(en::conv2d_into(in, w, bias, spec, in, &ws),
               std::invalid_argument);
}
