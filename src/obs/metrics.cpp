#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "obs/trace_io.hpp"

namespace evedge::obs {

namespace {

[[nodiscard]] std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Write-to-temp + rename: a reader never sees a torn snapshot.
bool write_atomically(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
    out.flush();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

[[nodiscard]] std::string escape_with(const std::string& v,
                                      bool escape_quote) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        if (escape_quote) {
          out += "\\\"";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string prometheus_escape_label(const std::string& v) {
  return escape_with(v, /*escape_quote=*/true);
}

std::string prometheus_escape_help(const std::string& v) {
  return escape_with(v, /*escape_quote=*/false);
}

// ------------------------------------------------------------ LabelSet

LabelSet::LabelSet(std::initializer_list<Pair> pairs)
    : LabelSet(std::vector<Pair>(pairs)) {}

LabelSet::LabelSet(std::vector<Pair> pairs) : pairs_(std::move(pairs)) {
  std::stable_sort(pairs_.begin(), pairs_.end(),
                   [](const Pair& a, const Pair& b) {
                     return a.first < b.first;
                   });
  // First value wins on a duplicated key.
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end(),
                           [](const Pair& a, const Pair& b) {
                             return a.first == b.first;
                           }),
               pairs_.end());
}

std::string LabelSet::prometheus(const std::vector<Pair>& extra) const {
  if (pairs_.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  const auto append = [&](const Pair& p) {
    if (!first) out += ",";
    first = false;
    out += p.first + "=\"" + prometheus_escape_label(p.second) + "\"";
  };
  for (const Pair& p : pairs_) append(p);
  for (const Pair& p : extra) append(p);
  out += "}";
  return out;
}

std::string LabelSet::key() const {
  // \x1f (unit sep) between key and value, \x1e (record sep) between
  // pairs — neither survives a Prometheus label name, so the encoding
  // cannot collide across distinct sets.
  std::string out;
  for (const Pair& p : pairs_) {
    out += p.first;
    out += '\x1f';
    out += p.second;
    out += '\x1e';
  }
  return out;
}

std::uint32_t intern_labels(const LabelSet& labels) {
  static std::mutex mutex;
  static std::unordered_map<std::string, std::uint32_t> ids;
  const std::lock_guard<std::mutex> lock(mutex);
  const auto [it, inserted] =
      ids.emplace(labels.key(), static_cast<std::uint32_t>(ids.size()));
  return it->second;
}

// ---------------------------------------------------------- Histogram

Histogram::Histogram(Options options) : options_(options) {
  if (options_.min <= 0.0) {
    throw std::invalid_argument("Histogram: min bound must be > 0");
  }
  if (options_.growth <= 1.0) {
    throw std::invalid_argument("Histogram: growth must be > 1");
  }
  if (options_.buckets < 2) {
    throw std::invalid_argument("Histogram: need >= 2 buckets");
  }
  // std::deque of atomics: constructed in place, never moved after.
  buckets_.resize(static_cast<std::size_t>(options_.buckets));
}

int Histogram::bucket_index(double v) const noexcept {
  if (!(v > options_.min)) return 0;  // also catches NaN -> bucket 0
  // bucket i covers (min * growth^(i-1), min * growth^i]
  const int idx = static_cast<int>(
      std::ceil(std::log(v / options_.min) / std::log(options_.growth)));
  if (idx < 0) return 0;
  if (idx >= options_.buckets) return options_.buckets - 1;
  return idx;
}

void Histogram::observe(double v) noexcept {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::bucket_upper(int i) const noexcept {
  if (i >= options_.buckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.min * std::pow(options_.growth, i);
}

double Histogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank over the bucket counts.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int i = 0; i < options_.buckets; ++i) {
    seen += bucket_value(i);
    if (seen >= rank) return bucket_upper(i);
  }
  return bucket_upper(options_.buckets - 1);
}

// ----------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::emplace(const std::string& name,
                                                 const std::string& help,
                                                 Entry::Kind kind) {
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = kind;
  entries_.push_back(std::move(entry));
  return entries_.back();
}

namespace {

[[noreturn]] void throw_kind_clash(const std::string& name) {
  throw std::invalid_argument("metric '" + name +
                              "' already registered with another type");
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find(name)) {
    if (e->kind != Entry::Kind::kCounter) throw_kind_clash(name);
    return *e->counter;
  }
  Entry& e = emplace(name, help, Entry::Kind::kCounter);
  e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find(name)) {
    if (e->kind != Entry::Kind::kGauge) throw_kind_clash(name);
    return *e->gauge;
  }
  Entry& e = emplace(name, help, Entry::Kind::kGauge);
  e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      Histogram::Options options,
                                      const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find(name)) {
    if (e->kind != Entry::Kind::kHistogram) throw_kind_clash(name);
    return *e->histogram;
  }
  Entry& e = emplace(name, help, Entry::Kind::kHistogram);
  e.histogram = std::make_unique<Histogram>(options);
  return *e.histogram;
}

LabeledCounter& MetricsRegistry::labeled_counter(const std::string& name,
                                                 const std::string& help,
                                                 std::size_t max_series) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find(name)) {
    if (e->kind != Entry::Kind::kLabeledCounter) throw_kind_clash(name);
    return *e->labeled_counter;
  }
  Entry& e = emplace(name, help, Entry::Kind::kLabeledCounter);
  e.labeled_counter = std::make_unique<LabeledCounter>(max_series);
  return *e.labeled_counter;
}

LabeledGauge& MetricsRegistry::labeled_gauge(const std::string& name,
                                             const std::string& help,
                                             std::size_t max_series) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find(name)) {
    if (e->kind != Entry::Kind::kLabeledGauge) throw_kind_clash(name);
    return *e->labeled_gauge;
  }
  Entry& e = emplace(name, help, Entry::Kind::kLabeledGauge);
  e.labeled_gauge = std::make_unique<LabeledGauge>(max_series);
  return *e.labeled_gauge;
}

LabeledHistogram& MetricsRegistry::labeled_histogram(
    const std::string& name, Histogram::Options options,
    const std::string& help, std::size_t max_series) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find(name)) {
    if (e->kind != Entry::Kind::kLabeledHistogram) throw_kind_clash(name);
    return *e->labeled_histogram;
  }
  Entry& e = emplace(name, help, Entry::Kind::kLabeledHistogram);
  e.labeled_histogram = std::make_unique<LabeledHistogram>(options, max_series);
  return *e.labeled_histogram;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

namespace {

void histogram_samples(std::string& out, const std::string& name,
                       const LabelSet& labels, const Histogram& h) {
  std::uint64_t cumulative = 0;
  for (int i = 0; i < h.bucket_count(); ++i) {
    cumulative += h.bucket_value(i);
    out += name + "_bucket" +
           labels.prometheus({{"le", format_double(h.bucket_upper(i))}}) +
           " " + std::to_string(cumulative) + "\n";
  }
  out += name + "_sum" + labels.prometheus() + " " + format_double(h.sum()) +
         "\n";
  out += name + "_count" + labels.prometheus() + " " +
         std::to_string(h.count()) + "\n";
}

/// The `<name>_dropped_series` companion counter, emitted once a
/// labeled family has overflowed its cardinality cap.
void dropped_series_sample(std::string& out, const std::string& name,
                           std::uint64_t dropped) {
  if (dropped == 0) return;
  out += "# TYPE " + name + "_dropped_series counter\n";
  out += name + "_dropped_series " + std::to_string(dropped) + "\n";
}

void histogram_json(std::string& out, const Histogram& h) {
  out += "{\"count\": " + std::to_string(h.count()) +
         ", \"sum\": " + format_double(h.sum()) + ", \"buckets\": [";
  for (int i = 0; i < h.bucket_count(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(h.bucket_value(i));
  }
  out += "], \"p50\": " + format_double(h.percentile(0.50)) +
         ", \"p99\": " + format_double(h.percentile(0.99)) + "}";
}

void labels_json(std::string& out, const LabelSet& labels) {
  out += "{";
  bool first = true;
  for (const auto& [k, v] : labels.pairs()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
  }
  out += "}";
}

/// Renders one labeled family as {"series": [...], "dropped_series": N}
/// with `value(metric)` filling each series' "value".
template <class Family, class ValueFn>
void family_json(std::string& out, const Family& family, ValueFn value) {
  out += "{\"series\": [";
  bool first = true;
  for (const auto* s : family.series()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"labels\": ";
    labels_json(out, s->labels);
    out += ", \"value\": ";
    value(out, *s->metric);
    out += "}";
  }
  out += "], \"dropped_series\": " + std::to_string(family.dropped()) + "}";
}

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const Entry& e : entries_) {
    if (!e.help.empty()) {
      out += "# HELP " + e.name + " " + prometheus_escape_help(e.help) + "\n";
    }
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out += "# TYPE " + e.name + " counter\n";
        out += e.name + " " + std::to_string(e.counter->value()) + "\n";
        break;
      case Entry::Kind::kGauge:
        out += "# TYPE " + e.name + " gauge\n";
        out += e.name + " " + format_double(e.gauge->value()) + "\n";
        break;
      case Entry::Kind::kHistogram:
        out += "# TYPE " + e.name + " histogram\n";
        histogram_samples(out, e.name, LabelSet{}, *e.histogram);
        break;
      case Entry::Kind::kLabeledCounter:
        out += "# TYPE " + e.name + " counter\n";
        for (const auto* s : e.labeled_counter->series()) {
          out += e.name + s->labels.prometheus() + " " +
                 std::to_string(s->metric->value()) + "\n";
        }
        dropped_series_sample(out, e.name, e.labeled_counter->dropped());
        break;
      case Entry::Kind::kLabeledGauge:
        out += "# TYPE " + e.name + " gauge\n";
        for (const auto* s : e.labeled_gauge->series()) {
          out += e.name + s->labels.prometheus() + " " +
                 format_double(s->metric->value()) + "\n";
        }
        dropped_series_sample(out, e.name, e.labeled_gauge->dropped());
        break;
      case Entry::Kind::kLabeledHistogram:
        out += "# TYPE " + e.name + " histogram\n";
        for (const auto* s : e.labeled_histogram->series()) {
          histogram_samples(out, e.name, s->labels, *s->metric);
        }
        dropped_series_sample(out, e.name, e.labeled_histogram->dropped());
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::json_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + e.name + "\": ";
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out += std::to_string(e.counter->value());
        break;
      case Entry::Kind::kGauge:
        out += format_double(e.gauge->value());
        break;
      case Entry::Kind::kHistogram:
        histogram_json(out, *e.histogram);
        break;
      case Entry::Kind::kLabeledCounter:
        family_json(out, *e.labeled_counter,
                    [](std::string& o, const Counter& c) {
                      o += std::to_string(c.value());
                    });
        break;
      case Entry::Kind::kLabeledGauge:
        family_json(out, *e.labeled_gauge,
                    [](std::string& o, const Gauge& g) {
                      o += format_double(g.value());
                    });
        break;
      case Entry::Kind::kLabeledHistogram:
        family_json(out, *e.labeled_histogram,
                    [](std::string& o, const Histogram& h) {
                      histogram_json(o, h);
                    });
        break;
    }
  }
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------- Snapshotter

Snapshotter::Snapshotter(MetricsRegistry& registry, double interval_ms,
                         std::string prometheus_path, std::string json_path)
    : registry_(registry),
      interval_ms_(interval_ms > 0.0 ? interval_ms : 100.0),
      prometheus_path_(std::move(prometheus_path)),
      json_path_(std::move(json_path)) {}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::snapshot_now() {
  if (sample_hook_) sample_hook_();
  if (!prometheus_path_.empty()) {
    (void)write_atomically(prometheus_path_, registry_.prometheus_text());
  }
  if (!json_path_.empty()) {
    (void)write_atomically(json_path_, registry_.json_text());
  }
  snapshots_.fetch_add(1, std::memory_order_relaxed);
}

void Snapshotter::start() {
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] {
    const auto interval =
        std::chrono::duration<double, std::milli>(interval_ms_);
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
      lock.unlock();
      snapshot_now();
      lock.lock();
    }
  });
}

void Snapshotter::stop() {
  if (!thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  snapshot_now();  // final state on disk after the run
}

}  // namespace evedge::obs
