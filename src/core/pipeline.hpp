#pragma once

// Discrete-event simulation of the single-task inference pipeline
// (camera -> E2SF -> [DSFA] -> mapped execution), the harness behind the
// paper's Fig. 8 single-task evaluation and the DSFA/E2SF ablations.
//
// The four evaluated variants compose from the flags below:
//   all-GPU dense baseline : use_e2sf=false, use_dsfa=false, GPU mapping
//   +E2SF                  : use_e2sf=true,  use_dsfa=false, GPU mapping
//   +E2SF+DSFA             : use_e2sf=true,  use_dsfa=true,  GPU mapping
//   Ev-Edge (full)         : both true with an NMP-searched mapping
// A fifth configuration (charge_encode_overhead) models the rejected
// alternative of running sparse libraries on dense event frames.

#include <cstdint>
#include <vector>

#include "core/dsfa.hpp"
#include "core/e2sf.hpp"
#include "core/inference_cost.hpp"
#include "events/event_stream.hpp"

namespace evedge::core {

class BatchExecutor;

struct PipelineConfig {
  E2sfConfig e2sf{};
  DsfaConfig dsfa{};
  bool use_e2sf = true;   ///< sparse frames + sparse kernel routes
  bool use_dsfa = true;   ///< dynamic aggregation before inference
  bool idle_dispatch = true;  ///< DSFA early dispatch on idle hardware
  /// Dense baseline emulating sparse libraries on dense frames (pays the
  /// encode overhead E2SF eliminates). Only meaningful when use_e2sf is
  /// false in spirit; exposed for the ablation bench.
  bool charge_encode_overhead = false;
  double frame_rate_hz = 30.0;  ///< grayscale (APS) frame clock
  /// When non-null, every dispatched batch is additionally executed on
  /// the real batched functional path (FunctionalNetwork::run_batched via
  /// BatchExecutor); measured wall time lands in the functional_* stats.
  /// The analytic cost model remains the simulation's timing authority.
  BatchExecutor* executor = nullptr;
};

struct PipelineStats {
  std::size_t frames_generated = 0;   ///< sparse frames entering the runtime
  std::size_t inferences = 0;         ///< device executions (batches)
  std::size_t buckets_completed = 0;  ///< merged buckets through inference
  std::size_t frames_dropped = 0;     ///< overflowed queue entries (stalest)
  double mean_latency_us = 0.0;  ///< completion - newest-data arrival
  double p95_latency_us = 0.0;
  double max_latency_us = 0.0;
  double mean_staleness_us = 0.0;  ///< completion - oldest-data arrival
  double mean_input_density = 0.0;
  double mean_batch = 0.0;
  /// Device busy time divided by completed *source* frames — the
  /// throughput-normalized per-frame service latency (the Fig. 8 metric;
  /// end-to-end latency above additionally includes queueing).
  double mean_service_per_frame_us = 0.0;
  double device_busy_us = 0.0;
  std::size_t source_frames_completed = 0;
  double busy_energy_mj = 0.0;
  double total_energy_mj = 0.0;  ///< including idle power over the run
  double sim_span_us = 0.0;
  DsfaStats dsfa;
  /// Real batched execution (only when PipelineConfig::executor is set).
  std::size_t functional_batches = 0;
  std::size_t functional_samples = 0;
  double functional_wall_ms = 0.0;

  [[nodiscard]] double energy_per_inference_mj() const noexcept {
    return inferences > 0
               ? total_energy_mj / static_cast<double>(inferences)
               : 0.0;
  }
};

/// Simulates the pipeline over `stream`. `mapping` assigns every mappable
/// node (uniform GPU/FP32 for the baselines, NMP output for full Ev-Edge).
[[nodiscard]] PipelineStats simulate_pipeline(
    const events::EventStream& stream, const nn::NetworkSpec& spec,
    const sched::TaskMapping& mapping, const hw::Platform& platform,
    const ActivationDensityProfile& densities, const PipelineConfig& config);

/// Same simulation over pre-built frames (arrival time = frame.t_end).
/// This is how the static accumulation baselines of §4.2 (event-count /
/// fixed-time framing, accumulate_by_count / accumulate_by_time) are fed
/// through the identical runtime for comparison. Frames must be ordered
/// by t_end. The E2SF settings in `config` are ignored.
[[nodiscard]] PipelineStats simulate_frame_pipeline(
    const std::vector<sparse::SparseFrame>& frames,
    const nn::NetworkSpec& spec, const sched::TaskMapping& mapping,
    const hw::Platform& platform, const ActivationDensityProfile& densities,
    const PipelineConfig& config);

}  // namespace evedge::core
