#pragma once

// QuantizedNetwork: the turn-key mixed-precision inference surface.
// Owns a FunctionalNetwork plus the calibrated INT8 plan for a mapper
// precision assignment and exposes three numerically related runs:
//
//   run()            real INT8 kernels (int32 accumulate, float requant)
//   run_reference()  the fake-quant float twin: identical quantization
//                    decisions (same scales, same rounding), float
//                    arithmetic — the validation oracle
//   run_fp32()       the unquantized baseline
//
// Contract: run() matches run_reference() within one quantization step
// of the output (output_quant_step), because integer accumulation is
// exact and the two paths share every rounding decision; they differ
// only in float-vs-int accumulation order.

#include <cstdint>
#include <span>

#include "nn/engine.hpp"
#include "quant/calibrate.hpp"

namespace evedge::quant {

/// One quantization step of the int8 grid covering `reference`: the
/// elementwise tolerance for comparing real-engine output against the
/// fake-quant reference.
[[nodiscard]] double output_quant_step(const sparse::DenseTensor& reference);

class QuantizedNetwork {
 public:
  /// Builds the functional network (weights from `seed`), calibrates
  /// activation scales over `calibration` FP32 runs and prepares the
  /// real + simulate plans for `precisions` (kInt8 entries execute
  /// int8; everything else stays FP32). `plan_options` controls plan
  /// construction policy (by default narrow input layers stay FP32 —
  /// see QuantPlanOptions).
  QuantizedNetwork(nn::NetworkSpec spec, std::uint64_t seed,
                   PrecisionMap precisions,
                   std::span<const ValidationSample> calibration,
                   WeightGranularity granularity =
                       WeightGranularity::kPerChannel,
                   const QuantPlanOptions& plan_options = {});
  // net_ holds non-owning pointers into real_/simulated_/exec_plan_
  // while plans are installed — moving or copying would dangle them.
  QuantizedNetwork(const QuantizedNetwork&) = delete;
  QuantizedNetwork& operator=(const QuantizedNetwork&) = delete;

  /// Calibrates a density-adaptive nn::ExecutionPlan on the given probe
  /// (FP32 warmup run) and installs it, composing sparse routes with the
  /// quant plan: sparse-routed int8 layers execute the int8 gather
  /// kernels inside run()/run_batched(). The plan stays owned here and
  /// applies until replaced or clear_execution_plan().
  const nn::ExecutionPlan& plan_execution(
      std::span<const sparse::DenseTensor> probe_steps,
      const sparse::DenseTensor* probe_image = nullptr,
      const nn::PlannerOptions& options = {});
  void clear_execution_plan();
  [[nodiscard]] bool has_execution_plan() const noexcept {
    return exec_plan_active_;
  }

  /// Mixed-precision inference through the real INT8 kernels.
  [[nodiscard]] sparse::DenseTensor run(
      std::span<const sparse::DenseTensor> event_steps,
      const sparse::DenseTensor* image = nullptr);
  /// Batched variant (per-sample results bitwise match run()).
  [[nodiscard]] sparse::DenseTensor run_batched(
      std::span<const sparse::DenseTensor> event_steps,
      const sparse::DenseTensor* image = nullptr);
  /// The float fake-quant twin of run().
  [[nodiscard]] sparse::DenseTensor run_reference(
      std::span<const sparse::DenseTensor> event_steps,
      const sparse::DenseTensor* image = nullptr);
  /// The FP32 baseline (no plan installed).
  [[nodiscard]] sparse::DenseTensor run_fp32(
      std::span<const sparse::DenseTensor> event_steps,
      const sparse::DenseTensor* image = nullptr);

  [[nodiscard]] nn::FunctionalNetwork& network() noexcept { return net_; }
  [[nodiscard]] const CalibrationTable& calibration() const noexcept {
    return calibration_;
  }
  [[nodiscard]] const QuantPlan& plan() const noexcept { return real_; }

 private:
  nn::FunctionalNetwork net_;
  PrecisionMap precisions_;
  CalibrationTable calibration_;
  QuantPlan real_;
  QuantPlan simulated_;
  nn::ExecutionPlan exec_plan_;
  bool exec_plan_active_ = false;
};

}  // namespace evedge::quant
