#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace evedge::obs {

namespace {

[[nodiscard]] std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Write-to-temp + rename: a reader never sees a torn snapshot.
bool write_atomically(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
    out.flush();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

// ---------------------------------------------------------- Histogram

Histogram::Histogram(Options options) : options_(options) {
  if (options_.min <= 0.0) {
    throw std::invalid_argument("Histogram: min bound must be > 0");
  }
  if (options_.growth <= 1.0) {
    throw std::invalid_argument("Histogram: growth must be > 1");
  }
  if (options_.buckets < 2) {
    throw std::invalid_argument("Histogram: need >= 2 buckets");
  }
  // std::deque of atomics: constructed in place, never moved after.
  buckets_.resize(static_cast<std::size_t>(options_.buckets));
}

int Histogram::bucket_index(double v) const noexcept {
  if (!(v > options_.min)) return 0;  // also catches NaN -> bucket 0
  // bucket i covers (min * growth^(i-1), min * growth^i]
  const int idx = static_cast<int>(
      std::ceil(std::log(v / options_.min) / std::log(options_.growth)));
  if (idx < 0) return 0;
  if (idx >= options_.buckets) return options_.buckets - 1;
  return idx;
}

void Histogram::observe(double v) noexcept {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::bucket_upper(int i) const noexcept {
  if (i >= options_.buckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.min * std::pow(options_.growth, i);
}

double Histogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank over the bucket counts.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int i = 0; i < options_.buckets; ++i) {
    seen += bucket_value(i);
    if (seen >= rank) return bucket_upper(i);
  }
  return bucket_upper(options_.buckets - 1);
}

// ----------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find(name)) {
    if (e->kind != Entry::Kind::kCounter) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with another type");
    }
    return *e->counter;
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = Entry::Kind::kCounter;
  entry.counter = std::make_unique<Counter>();
  entries_.push_back(std::move(entry));
  return *entries_.back().counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find(name)) {
    if (e->kind != Entry::Kind::kGauge) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with another type");
    }
    return *e->gauge;
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = Entry::Kind::kGauge;
  entry.gauge = std::make_unique<Gauge>();
  entries_.push_back(std::move(entry));
  return *entries_.back().gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      Histogram::Options options,
                                      const std::string& help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find(name)) {
    if (e->kind != Entry::Kind::kHistogram) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with another type");
    }
    return *e->histogram;
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = Entry::Kind::kHistogram;
  entry.histogram = std::make_unique<Histogram>(options);
  entries_.push_back(std::move(entry));
  return *entries_.back().histogram;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string MetricsRegistry::prometheus_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const Entry& e : entries_) {
    if (!e.help.empty()) {
      out += "# HELP " + e.name + " " + e.help + "\n";
    }
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out += "# TYPE " + e.name + " counter\n";
        out += e.name + " " + std::to_string(e.counter->value()) + "\n";
        break;
      case Entry::Kind::kGauge:
        out += "# TYPE " + e.name + " gauge\n";
        out += e.name + " " + format_double(e.gauge->value()) + "\n";
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        out += "# TYPE " + e.name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (int i = 0; i < h.bucket_count(); ++i) {
          cumulative += h.bucket_value(i);
          out += e.name + "_bucket{le=\"" + format_double(h.bucket_upper(i)) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        out += e.name + "_sum " + format_double(h.sum()) + "\n";
        out += e.name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::json_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + e.name + "\": ";
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out += std::to_string(e.counter->value());
        break;
      case Entry::Kind::kGauge:
        out += format_double(e.gauge->value());
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        out += "{\"count\": " + std::to_string(h.count()) +
               ", \"sum\": " + format_double(h.sum()) + ", \"buckets\": [";
        for (int i = 0; i < h.bucket_count(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(h.bucket_value(i));
        }
        out += "], \"p50\": " + format_double(h.percentile(0.50)) +
               ", \"p99\": " + format_double(h.percentile(0.99)) + "}";
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------- Snapshotter

Snapshotter::Snapshotter(MetricsRegistry& registry, double interval_ms,
                         std::string prometheus_path, std::string json_path)
    : registry_(registry),
      interval_ms_(interval_ms > 0.0 ? interval_ms : 100.0),
      prometheus_path_(std::move(prometheus_path)),
      json_path_(std::move(json_path)) {}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::snapshot_now() {
  if (sample_hook_) sample_hook_();
  if (!prometheus_path_.empty()) {
    (void)write_atomically(prometheus_path_, registry_.prometheus_text());
  }
  if (!json_path_.empty()) {
    (void)write_atomically(json_path_, registry_.json_text());
  }
  snapshots_.fetch_add(1, std::memory_order_relaxed);
}

void Snapshotter::start() {
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] {
    const auto interval =
        std::chrono::duration<double, std::milli>(interval_ms_);
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
      lock.unlock();
      snapshot_now();
      lock.lock();
    }
  });
}

void Snapshotter::stop() {
  if (!thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  snapshot_now();  // final state on disk after the run
}

}  // namespace evedge::obs
