#include "serve/serve_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace evedge::serve {

void LatencyReservoir::merge(const LatencyReservoir& other) {
  samples_us_.insert(samples_us_.end(), other.samples_us_.begin(),
                     other.samples_us_.end());
}

double LatencyReservoir::mean_us() const noexcept {
  if (samples_us_.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples_us_) sum += s;
  return sum / static_cast<double>(samples_us_.size());
}

double LatencyReservoir::max_us() const noexcept {
  double best = 0.0;
  for (const double s : samples_us_) best = std::max(best, s);
  return best;
}

double LatencyReservoir::percentile_us(double q) const {
  if (samples_us_.empty()) return 0.0;
  std::vector<double> sorted = samples_us_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      clamped * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

double ServeReport::percentile_us(double q) const {
  LatencyReservoir pooled;
  for (const StreamServeStats& s : streams) pooled.merge(s.latency);
  return pooled.percentile_us(q);
}

std::size_t ServeReport::total_batches() const noexcept {
  std::size_t n = 0;
  for (const WorkerServeStats& w : workers) n += w.batches;
  return n;
}

double ServeReport::mean_batch() const noexcept {
  std::size_t batches = 0;
  std::size_t samples = 0;
  for (const WorkerServeStats& w : workers) {
    batches += w.batches;
    samples += w.samples;
  }
  return batches > 0
             ? static_cast<double>(samples) / static_cast<double>(batches)
             : 0.0;
}

std::string ServeReport::describe() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "serve: %zu frames in %.1f ms (%.1f frames/s), "
                "%zu dropped, %zu batches (mean %.2f), queue peak %zu\n",
                frames_completed, wall_ms, frames_per_second(),
                frames_dropped, total_batches(), mean_batch(),
                queue_peak_depth);
  out += line;
  std::snprintf(line, sizeof(line),
                "latency pooled: p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
                percentile_us(0.50) / 1e3, percentile_us(0.95) / 1e3,
                percentile_us(0.99) / 1e3);
  out += line;
  for (const StreamServeStats& s : streams) {
    std::snprintf(line, sizeof(line),
                  "  stream %d: %zu enq, %zu done, %zu drop, "
                  "p95 %.2f ms, density %.4f\n",
                  s.stream_id, s.enqueued, s.completed, s.dropped,
                  s.latency.percentile_us(0.95) / 1e3,
                  s.mean_frame_density);
    out += line;
  }
  for (const WorkerServeStats& w : workers) {
    std::snprintf(line, sizeof(line),
                  "  worker %d: %zu batches, %zu samples (mean %.2f), "
                  "busy %.1f ms, %zu recal, %d sparse routes\n",
                  w.worker_id, w.batches, w.samples, w.mean_batch(),
                  w.busy_ms, w.recalibrations, w.plan_sparse_nodes);
    out += line;
  }
  return out;
}

}  // namespace evedge::serve
