#include "serve/serve_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace evedge::serve {

const char* to_string(FrameFault fault) noexcept {
  switch (fault) {
    case FrameFault::kNone: return "none";
    case FrameFault::kGeometryMismatch: return "geometry-mismatch";
    case FrameFault::kOutOfBoundsCoordinate: return "out-of-bounds-coordinate";
    case FrameFault::kNonFiniteValue: return "non-finite-value";
    case FrameFault::kBadTiming: return "bad-timing";
    case FrameFault::kDeadlineExceeded: return "deadline-exceeded";
    case FrameFault::kRetriesExhausted: return "retries-exhausted";
  }
  return "unknown";
}

void LatencyReservoir::merge(const LatencyReservoir& other) {
  samples_us_.insert(samples_us_.end(), other.samples_us_.begin(),
                     other.samples_us_.end());
}

double LatencyReservoir::mean_us() const noexcept {
  if (samples_us_.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples_us_) sum += s;
  return sum / static_cast<double>(samples_us_.size());
}

double LatencyReservoir::max_us() const noexcept {
  double best = 0.0;
  for (const double s : samples_us_) best = std::max(best, s);
  return best;
}

double LatencyReservoir::percentile_us(double q) const {
  if (samples_us_.empty()) return 0.0;
  std::vector<double> sorted = samples_us_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      clamped * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

double LatencyReservoir::fraction_below_us(double us) const noexcept {
  if (samples_us_.empty()) return 0.0;
  std::size_t below = 0;
  for (const double s : samples_us_) {
    if (s <= us) ++below;
  }
  return static_cast<double>(below) /
         static_cast<double>(samples_us_.size());
}

double RollingLatency::percentile_us(double q) const {
  std::vector<double> sorted;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (size_ == 0) return 0.0;
    sorted.assign(ring_.begin(),
                  ring_.begin() + static_cast<std::ptrdiff_t>(size_));
  }
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      clamped * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

double ServeReport::percentile_us(double q) const {
  LatencyReservoir pooled;
  for (const StreamServeStats& s : streams) pooled.merge(s.latency);
  return pooled.percentile_us(q);
}

double ServeReport::fraction_below_us(double us) const {
  LatencyReservoir pooled;
  for (const StreamServeStats& s : streams) pooled.merge(s.latency);
  return pooled.fraction_below_us(us);
}

std::size_t ServeReport::total_batches() const noexcept {
  std::size_t n = 0;
  for (const WorkerServeStats& w : workers) n += w.batches;
  return n;
}

double ServeReport::mean_batch() const noexcept {
  std::size_t batches = 0;
  std::size_t samples = 0;
  for (const WorkerServeStats& w : workers) {
    batches += w.batches;
    samples += w.samples;
  }
  return batches > 0
             ? static_cast<double>(samples) / static_cast<double>(batches)
             : 0.0;
}

std::string ServeReport::describe() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "serve: %zu frames in %.1f ms (%.1f frames/s), "
                "%zu dropped, %zu shed, %zu failed, %zu batches "
                "(mean %.2f), queue peak %zu, accounting %s\n",
                frames_completed, wall_ms, frames_per_second(),
                frames_dropped, frames_shed, frames_failed, total_batches(),
                mean_batch(), queue_peak_depth,
                accounting_ok() ? "ok" : "BROKEN");
  out += line;
  std::snprintf(line, sizeof(line),
                "latency pooled: p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
                percentile_us(0.50) / 1e3, percentile_us(0.95) / 1e3,
                percentile_us(0.99) / 1e3);
  out += line;
  if (rejected_packets + duplicate_packets + wire_resumes > 0) {
    std::snprintf(line, sizeof(line),
                  "wire: %zu rejected packets, %zu duplicates, "
                  "%zu resumes\n",
                  rejected_packets, duplicate_packets, wire_resumes);
    out += line;
  }
  if (wire_heartbeats + wire_rewinds + wire_resyncs + wire_reconnects >
      0) {
    std::snprintf(line, sizeof(line),
                  "wire health: %zu heartbeats, %zu rewinds seen, "
                  "%zu resyncs, %zu reconnects\n",
                  wire_heartbeats, wire_rewinds, wire_resyncs,
                  wire_reconnects);
    out += line;
  }
  if (faults.total() > 0) {
    std::snprintf(line, sizeof(line),
                  "faults injected: %zu worker-exc, %zu spikes, "
                  "%zu corrupt, %zu stalls, %zu disconnects\n",
                  faults.worker_exceptions, faults.latency_spikes,
                  faults.corrupt_frames, faults.stream_stalls,
                  faults.stream_disconnects);
    out += line;
  }
  if (!degradation.empty() || max_degrade_level > 0) {
    std::snprintf(line, sizeof(line),
                  "degradation: %zu transitions, max level %d, "
                  "ms/level [%.1f %.1f %.1f %.1f]\n",
                  degradation.size(), max_degrade_level,
                  ms_at_degrade_level[0], ms_at_degrade_level[1],
                  ms_at_degrade_level[2], ms_at_degrade_level[3]);
    out += line;
  }
  for (const StreamServeStats& s : streams) {
    std::snprintf(line, sizeof(line),
                  "  stream %d: %zu enq, %zu done, %zu drop, %zu shed, "
                  "%zu failed%s, p95 %.2f ms, density %.4f\n",
                  s.stream_id, s.enqueued, s.completed, s.dropped, s.shed,
                  s.failed, s.ingress_failed ? " [ingress failed]" : "",
                  s.latency.percentile_us(0.95) / 1e3,
                  s.mean_frame_density);
    out += line;
    if (s.slo_good + s.slo_bad > 0) {
      std::snprintf(line, sizeof(line),
                    "    slo: %zu good, %zu bad, burn rate %.2f\n",
                    s.slo_good, s.slo_bad, s.burn_rate);
      out += line;
    }
  }
  for (const WorkerServeStats& w : workers) {
    std::snprintf(line, sizeof(line),
                  "  worker %d: %zu batches, %zu samples (mean %.2f), "
                  "busy %.1f ms, %zu recal, %d sparse routes, "
                  "%zu failures, %zu restarts, %zu retried, %zu int8\n",
                  w.worker_id, w.batches, w.samples, w.mean_batch(),
                  w.busy_ms, w.recalibrations, w.plan_sparse_nodes,
                  w.failures, w.restarts, w.frames_retried, w.int8_batches);
    out += line;
  }
  return out;
}

}  // namespace evedge::serve
