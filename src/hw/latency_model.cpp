#include "hw/latency_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evedge::hw {

LayerWorkload LayerWorkload::from_layer(const nn::LayerSpec& spec) {
  LayerWorkload w;
  w.macs = spec.macs();
  w.input_elements = spec.input_elements();
  w.output_elements = spec.output_elements();
  w.weight_elements = spec.weight_count();
  w.domain = nn::domain_of(spec.kind);
  return w;
}

double activation_bytes(std::size_t elements, Precision precision) noexcept {
  return static_cast<double>(elements) *
         quant::bytes_per_element(precision);
}

namespace {

/// Batch utilization bonus: one batched GEMM of size b runs slightly
/// better than b unit GEMMs even past overhead amortization.
[[nodiscard]] double batch_efficiency(int batch) noexcept {
  return std::min(1.25, 1.0 + 0.05 * (batch - 1));
}

}  // namespace

double layer_latency_us(const ProcessingElement& pe, Precision precision,
                        const LayerWorkload& workload, Route route,
                        int batch) {
  if (batch < 1) throw std::invalid_argument("batch must be >= 1");
  if (!pe.supports(precision)) {
    throw std::invalid_argument(pe.name + " does not support " +
                                quant::to_string(precision));
  }
  if (route == Route::kSparse && !pe.supports_sparse) {
    throw std::invalid_argument(pe.name + " has no sparse kernels");
  }
  if (workload.input_density < 0.0 || workload.input_density > 1.0) {
    throw std::invalid_argument("input_density out of [0, 1]");
  }

  const double eff =
      pe.dense_efficiency *
      (workload.domain == nn::Domain::kSnn ? pe.spiking_efficiency : 1.0) *
      batch_efficiency(batch);
  const double rate = pe.peak(precision) * eff;  // MAC/s

  double effective_macs = static_cast<double>(workload.macs);
  if (route == Route::kSparse) {
    effective_macs *= workload.input_density * pe.sparse_overhead;
  }
  const double compute_us = effective_macs / rate * 1e6;

  // Memory traffic: activations in/out plus one weight fetch per batch.
  double act_bytes = activation_bytes(
      workload.input_elements + workload.output_elements, precision);
  if (route == Route::kSparse) {
    // COO traffic: only non-zeros move, but each carries coordinates
    // (2 x int32) in addition to its value.
    const double coord_bytes = 8.0;
    act_bytes = static_cast<double>(workload.input_elements) *
                    workload.input_density *
                    (quant::bytes_per_element(precision) + coord_bytes) +
                activation_bytes(workload.output_elements, precision);
  }
  if (workload.domain == nn::Domain::kSnn) {
    // LIF state: membrane read-modify-write plus threshold compare. The
    // membrane potential needs at least half-precision storage whatever
    // the synaptic precision, so its traffic never drops below 2 B/site.
    const double state_bytes = std::max(quant::bytes_per_element(precision),
                                        2.0);
    act_bytes += 3.0 * static_cast<double>(workload.output_elements) *
                 state_bytes;
  }
  const double weight_bytes =
      activation_bytes(workload.weight_elements, precision);
  const double mem_us =
      (static_cast<double>(batch) * act_bytes + weight_bytes) /
      pe.mem_bandwidth_bytes_per_us;

  const double per_batch_compute =
      static_cast<double>(batch) * compute_us;
  // Sparse kernels pay an extra setup pass (index handling) on top of
  // the plain launch.
  const double launch = route == Route::kSparse
                            ? 1.5 * pe.launch_overhead_us
                            : pe.launch_overhead_us;
  return launch + std::max(per_batch_compute, mem_us);
}

Route best_route(const ProcessingElement& pe, Precision precision,
                 const LayerWorkload& workload) {
  if (!pe.supports_sparse) return Route::kDense;
  const double dense = layer_latency_us(pe, precision, workload,
                                        Route::kDense);
  const double sparse = layer_latency_us(pe, precision, workload,
                                         Route::kSparse);
  return sparse < dense ? Route::kSparse : Route::kDense;
}

double encode_to_sparse_us(const ProcessingElement& pe, std::size_t elements,
                           Precision precision) {
  // Full scan of the dense tensor plus compaction writes; memory bound.
  const double scan_bytes = activation_bytes(elements, precision);
  return pe.launch_overhead_us +
         2.0 * scan_bytes / pe.mem_bandwidth_bytes_per_us;
}

}  // namespace evedge::hw
