#pragma once

// Sparse compute kernels: gather-scatter sparse convolution and the
// submanifold variant of Graham et al. [6] that the paper's E2SF feeds.
// Dense reference convolutions live in evedge::nn; tests cross-validate
// the two implementations on random inputs.

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/tensor.hpp"
#include "sparse/workspace.hpp"

namespace evedge::sparse {

/// One sample of a sparse batch: in_channels COO channels sharing extents.
using SparseSample = std::vector<CooChannel>;

/// Threading axis for the per-site reduction of the gather kernels.
/// Both axes produce bitwise-identical outputs for any thread count;
/// kAuto prefers active-site chunks (one tap-stream pass for all
/// channels) and falls back to channel blocks when the site chunks
/// cannot fill the worker pool. Above 256 output channels the site axis
/// is unavailable (its accumulator is stack-allocated) and every mode
/// runs the channel-blocked walk.
enum class SubmanifoldThreading : std::uint8_t {
  kAuto,
  kOutputChannels,
  kActiveSites,
};

/// Geometry of a 2-D convolution (square kernel).
struct Conv2dSpec {
  int in_channels = 1;
  int out_channels = 1;
  int kernel = 3;
  int stride = 1;
  int padding = 1;
};

void validate_conv_spec(const Conv2dSpec& spec);

/// Output spatial extent of a convolution over an h x w input.
[[nodiscard]] int conv_out_extent(int in_extent, int kernel, int stride,
                                  int padding);

/// Work accounting for one convolution application.
struct ConvWork {
  std::size_t dense_macs = 0;   ///< MACs a dense kernel would execute
  std::size_t sparse_macs = 0;  ///< MACs the sparse kernel executed
  std::size_t nnz_in = 0;       ///< input non-zeros
};

/// Output-row window for the tiled (cache-blocked) kernel variants: the
/// kernel computes only output rows [out_row0, out_row1), reading the
/// input halo rows [out_row0*stride - padding,
/// (out_row1-1)*stride - padding + kernel) that reach them (clamped to
/// the input extents). Windowed outputs keep GLOBAL coordinates and the
/// full-plane extents; every produced element is bitwise identical to
/// the same element of the full-plane call, because the per-site tap
/// list and its (ic, ky, kx) reduction order depend only on which input
/// entries exist in the halo — and the halo is complete by construction.
struct RowWindow {
  int out_row0 = 0;
  int out_row1 = 0;  ///< exclusive
};

/// Sparse convolution: scatter each input non-zero through the kernel into
/// a dense output [1, out_channels, out_h, out_w].
/// `weights` is [out_channels, in_channels, k, k]; `bias` is per output
/// channel (empty = no bias). `work`, when non-null, accumulates counters.
[[nodiscard]] DenseTensor sparse_conv2d(std::span<const CooChannel> input,
                                        const DenseTensor& weights,
                                        std::span<const float> bias,
                                        const Conv2dSpec& spec,
                                        ConvWork* work = nullptr);

/// Submanifold sparse convolution (stride 1 only): output non-zeros are
/// restricted to the union of input active sites, preventing dilation of
/// the active set across layers. Returns out_channels sparse channels.
/// `workspace`, when non-null, supplies the scratch arena (slot 0);
/// otherwise a thread-local fallback arena is used. `packed_weights`,
/// when non-empty, must be the [tap offset][oc] transposition of
/// `weights` (pack_conv_weights) — chain callers pack each layer once
/// instead of once per invocation.
[[nodiscard]] std::vector<CooChannel> submanifold_conv2d(
    std::span<const CooChannel> input, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec,
    ConvWork* work = nullptr, Workspace* workspace = nullptr,
    SubmanifoldThreading threading = SubmanifoldThreading::kAuto,
    std::span<const float> packed_weights = {});

/// CSR-output sparse convolution: the same strided scatter arithmetic as
/// sparse_conv2d, routed to sorted CooChannels (via from_sorted_entries)
/// instead of a dense tensor, so strided sparse layers chain without a
/// densify/sparsify round-trip. Entries exist only at output sites
/// reached by at least one input tap; `bias` (when non-empty) is added at
/// those active sites only — inactive sites stay implicit zeros, unlike
/// the dense variant which fills them with the bias value. At active
/// sites the result is bitwise identical to sparse_conv2d's.
[[nodiscard]] std::vector<CooChannel> sparse_conv2d_csr(
    std::span<const CooChannel> input, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec,
    ConvWork* work = nullptr, Workspace* workspace = nullptr,
    SubmanifoldThreading threading = SubmanifoldThreading::kAuto,
    std::span<const float> packed_weights = {});

// --- Batched entry points ------------------------------------------------
// Process all samples of a DSFA merge batch in one call: weights are
// validated and packed once, each sample keeps its own active-site list,
// and samples are distributed over the worker pool (one Workspace scratch
// slot per worker, inner reduction threading budget split accordingly).
// Per-sample outputs are bitwise identical to the corresponding batch-1
// call. All samples must share channel count and extents; an empty
// batch throws.

/// Batched submanifold convolution; result[i] is the output of sample i.
[[nodiscard]] std::vector<SparseSample> submanifold_conv2d_batch(
    std::span<const SparseSample> inputs, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec,
    ConvWork* work = nullptr, Workspace* workspace = nullptr,
    SubmanifoldThreading threading = SubmanifoldThreading::kAuto,
    std::span<const float> packed_weights = {});

/// Batched CSR-output strided convolution; result[i] matches
/// sparse_conv2d_csr(inputs[i], ...).
[[nodiscard]] std::vector<SparseSample> sparse_conv2d_csr_batch(
    std::span<const SparseSample> inputs, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec,
    ConvWork* work = nullptr, Workspace* workspace = nullptr,
    SubmanifoldThreading threading = SubmanifoldThreading::kAuto,
    std::span<const float> packed_weights = {});

/// Batched dense-output scatter convolution: one [N, out_channels, out_h,
/// out_w] tensor (a single allocation) whose slice n equals
/// sparse_conv2d(inputs[n], ...).
[[nodiscard]] DenseTensor sparse_conv2d_batch(
    std::span<const SparseSample> inputs, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec,
    ConvWork* work = nullptr);

/// Allocation-free steady-state variant of sparse_conv2d_batch: writes
/// into `out`, reusing its buffer when capacity allows (the engine's
/// spiking-current staging path — a sparse-routed spiking conv scatters
/// straight into the dense LIF input, no COO materialization).
void sparse_conv2d_batch_into(std::span<const SparseSample> inputs,
                              const DenseTensor& weights,
                              std::span<const float> bias,
                              const Conv2dSpec& spec, DenseTensor& out,
                              ConvWork* work = nullptr);

// --- Tile-windowed variants (engine chain walker) -------------------------
// Same kernels restricted to a RowWindow of output rows. Inputs may be
// full planes or window carriers from an upstream windowed call, as long
// as they contain every entry of the halo rows; entries outside the halo
// are never read. Windowed calls slice per-tile input views through the
// CooChannel row index (rows_span), so each input channel's row_ptr()
// cache is built by the worker that owns the sample.

/// Windowed submanifold_conv2d_batch: result[i] holds exactly the
/// window-row entries of the full-plane call, full-plane extents kept.
[[nodiscard]] std::vector<SparseSample> submanifold_conv2d_batch_window(
    std::span<const SparseSample> inputs, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec, RowWindow window,
    ConvWork* work = nullptr, Workspace* workspace = nullptr,
    SubmanifoldThreading threading = SubmanifoldThreading::kAuto,
    std::span<const float> packed_weights = {});

/// Windowed sparse_conv2d_csr_batch (same contract as above).
[[nodiscard]] std::vector<SparseSample> sparse_conv2d_csr_batch_window(
    std::span<const SparseSample> inputs, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec, RowWindow window,
    ConvWork* work = nullptr, Workspace* workspace = nullptr,
    SubmanifoldThreading threading = SubmanifoldThreading::kAuto,
    std::span<const float> packed_weights = {});

/// Windowed dense-output scatter: `out` is reset to
/// [N, out_channels, rows, out_w] where rows = out_row1 - out_row0 (row 0
/// of each plane = global output row out_row0). Slice values are bitwise
/// identical to the same rows of sparse_conv2d_batch_into's output.
void sparse_conv2d_window_into(std::span<const SparseSample> inputs,
                               const DenseTensor& weights,
                               std::span<const float> bias,
                               const Conv2dSpec& spec, RowWindow window,
                               DenseTensor& out, ConvWork* work = nullptr);

// --- Gather front-end (shared with alternative compute backends) ---------

/// Output geometry of one gather-kernel invocation.
struct GatherGeometry {
  int out_h = 0;
  int out_w = 0;
  std::size_t nnz_in = 0;  ///< input non-zeros seen while gathering
};

/// Builds the gather-kernel front half for one sample into `scratch`:
/// the sorted active output-site list and the shared per-site (weight
/// offset, value) tap lists (sites / taps / site_ptr), scatter-built in
/// O(nnz * k^2) by a count/prefix/fill pass over the input non-zeros.
/// This is the geometry stage the float reduction in submanifold_conv2d
/// / sparse_conv2d_csr consumes; it is exposed so alternative backends
/// (the INT8 engine) can run their own reduction over the identical tap
/// stream. `weights` is only used for shape validation. Callers MUST
/// call clear_gather_scratch with the same input before reusing
/// `scratch` for another sample. `window`, when non-null, restricts the
/// geometry to that output-row window (tap lists bitwise identical to
/// the full-plane call's for every window site); out_h stays the
/// full-plane extent.
[[nodiscard]] GatherGeometry build_gather_taps(
    std::span<const CooChannel> input, const DenseTensor& weights,
    std::span<const float> bias, const Conv2dSpec& spec, bool submanifold,
    ConvScratch& scratch, const RowWindow* window = nullptr);

/// Restores the active bitmap of `scratch` to all-zero, touching only
/// the sites build_gather_taps marked for `input`.
void clear_gather_scratch(std::span<const CooChannel> input,
                          ConvScratch& scratch);

/// Dense [1, C, H, W] tensor -> C sparse channels (the encode step whose
/// cost E2SF eliminates). `scanned_elements`, when non-null, receives the
/// number of dense elements visited (the encode cost driver).
[[nodiscard]] std::vector<CooChannel> dense_to_channels(
    const DenseTensor& dense, std::size_t* scanned_elements = nullptr);

/// C sparse channels -> dense [1, C, H, W].
[[nodiscard]] DenseTensor channels_to_dense(
    std::span<const CooChannel> channels);

// --- Chain boundaries (engine sparse-carrier entry points) ----------------
// The density-adaptive engine keeps activations in COO form between
// consecutive sparse-routed layers and crosses representations only at
// route boundaries. These are those boundary crossings, batch-slice
// aware (the engine's tensors are [N, C, H, W]).

/// Packs [oc][ic][ky][kx] conv weights into the [tap offset][oc] layout
/// the gather reduction consumes. Chains pack each layer once (e.g. per
/// run) and pass the result to the kernels above via `packed_weights`.
void pack_conv_weights(const DenseTensor& weights, std::vector<float>& packed);

/// Sparsifies sample `n` of a [N, C, H, W] tensor into COO channels
/// (chain-head boundary). Extents and channel count come from `dense`.
[[nodiscard]] SparseSample slice_to_channels(const DenseTensor& dense, int n);

/// Densifies `channels` into sample `n` of `dense` (route-exit boundary):
/// zero-fills the slice, then scatters the stored entries. `dense` must
/// already have the matching [N, C, H, W] shape.
void channels_into_slice(std::span<const CooChannel> channels,
                         DenseTensor& dense, int n);

/// Sparse ReLU over a whole sample (prune_negative per channel).
void relu_sample_inplace(SparseSample& sample) noexcept;

/// Mean stored-entry fraction across the sample's channels (density
/// telemetry for the execution planner).
[[nodiscard]] double sample_density(const SparseSample& sample) noexcept;

}  // namespace evedge::sparse
