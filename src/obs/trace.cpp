#include "obs/trace.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace evedge::obs {

const char* intern_name(std::string_view name) {
  static std::mutex mutex;
  // Deliberately leaked: interned names must stay valid through any
  // static-teardown-time trace export, so the pool is never destroyed.
  // unordered_set is node-based — c_str() pointers survive rehashing.
  static auto* const pool = new std::unordered_set<std::string>();
  const std::lock_guard<std::mutex> lock(mutex);
  return pool->emplace(name).first->c_str();
}

std::atomic<bool> Tracer::enabled_{false};

std::chrono::steady_clock::time_point trace_epoch() noexcept {
  // Latched once, process-wide: static-local initialization is
  // thread-safe, and everything downstream (spans, journal t_ms) is a
  // difference against this instant.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t to_trace_ns(
    std::chrono::steady_clock::time_point tp) noexcept {
  const auto d = tp - trace_epoch();
  if (d.count() < 0) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
}

std::size_t Tracer::ring_capacity() const noexcept {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return capacity_;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    ring->count.store(0, std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> out;
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const std::uint32_t n = ring->count.load(std::memory_order_acquire);
    out.insert(out.end(), ring->slots.begin(), ring->slots.begin() + n);
  }
  return out;
}

std::uint64_t Tracer::dropped() const noexcept {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<Ring>& ring : rings_) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t Tracer::ring_count() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return rings_.size();
}

Tracer::Ring& Tracer::local_ring() {
  // First emit on a thread registers its ring (the only locked path on
  // the way to a slot); afterwards the thread-local pointer short-cuts
  // straight to it. Rings are owned by the registry and outlive their
  // threads, so a snapshot after a worker joined still sees its events.
  thread_local Ring* ring = nullptr;
  thread_local const Tracer* owner = nullptr;
  if (ring == nullptr || owner != this) {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    rings_.push_back(std::make_unique<Ring>(
        capacity_, static_cast<std::uint32_t>(rings_.size())));
    ring = rings_.back().get();
    owner = this;
  }
  return *ring;
}

void Tracer::push(TraceEvent event) noexcept {
  Ring& ring = local_ring();
  const std::uint32_t idx = ring.count.load(std::memory_order_relaxed);
  if (idx >= ring.slots.size()) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  event.tid = ring.tid;
  ring.slots[idx] = event;
  ring.count.store(idx + 1, std::memory_order_release);
}

void Tracer::span(const char* cat, const char* name, std::uint64_t t0_ns,
                  std::uint64_t t1_ns, const char* arg0_key,
                  std::int64_t arg0, const char* arg1_key,
                  std::int64_t arg1) noexcept {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = Phase::kSpan;
  e.cat = cat;
  e.name = name;
  e.t_ns = t0_ns;
  e.dur_ns = t1_ns >= t0_ns ? t1_ns - t0_ns : 0;
  e.arg0_key = arg0_key;
  e.arg0 = arg0;
  e.arg1_key = arg1_key;
  e.arg1 = arg1;
  instance().push(e);
}

void Tracer::instant(const char* cat, const char* name,
                     const char* arg0_key, std::int64_t arg0,
                     const char* arg1_key, std::int64_t arg1) noexcept {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = Phase::kInstant;
  e.cat = cat;
  e.name = name;
  e.t_ns = now_ns();
  e.arg0_key = arg0_key;
  e.arg0 = arg0;
  e.arg1_key = arg1_key;
  e.arg1 = arg1;
  instance().push(e);
}

void Tracer::counter(const char* cat, const char* name,
                     std::int64_t value) noexcept {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = Phase::kCounter;
  e.cat = cat;
  e.name = name;
  e.t_ns = now_ns();
  e.arg0_key = "value";
  e.arg0 = value;
  instance().push(e);
}

}  // namespace evedge::obs
