// Cross-module integration tests: the EvEdgeRuntime facade (offline
// profiling + NMP search + online pipeline), pipeline accounting
// invariants across stream profiles, scheduler/mapper interplay under
// the DLA layer-support constraints, objective variants and artifact
// export.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/e2e_accuracy.hpp"
#include "core/runtime.hpp"
#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "hw/profiler.hpp"
#include "mapper/baselines.hpp"
#include "quant/accuracy.hpp"
#include "sched/scheduler.hpp"

namespace ec = evedge::core;
namespace ee = evedge::events;
namespace eh = evedge::hw;
namespace em = evedge::mapper;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace ss = evedge::sched;

namespace {

ee::EventStream davis_stream(const ee::DensityProfile& profile,
                             ee::TimeUs duration, std::uint64_t seed) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::davis346();
  cfg.seed = seed;
  return ee::PoissonEventSynthesizer(profile, cfg).generate(0, duration);
}

ec::EvEdgeOptions fast_options() {
  ec::EvEdgeOptions options;
  options.nmp.population = 10;
  options.nmp.generations = 6;
  options.validation_samples = 2;
  options.sensitivity_subset = 1;
  options.frame_rate_hz = 10.0;
  return options;
}

}  // namespace

// ----------------------------------------------------------- runtime facade

TEST(Runtime, OfflinePhaseProducesValidMapping) {
  const ec::EvEdgeRuntime runtime(en::NetworkId::kDotie, eh::xavier_agx(),
                                  fast_options());
  const auto& mapping = runtime.mapping();
  ASSERT_EQ(mapping.nodes.size(), runtime.spec().graph.size());
  int assigned = 0;
  for (const auto& node : mapping.nodes) {
    if (node.pe >= 0) ++assigned;
  }
  EXPECT_GT(assigned, 0);
  // The search history must be recorded (Fig. 10a data).
  EXPECT_FALSE(runtime.nmp_result().history.empty());
}

TEST(Runtime, EvEdgeBeatsAllGpuBaselineOnServiceAndEnergy) {
  const ec::EvEdgeRuntime runtime(en::NetworkId::kSpikeFlowNet,
                                  eh::xavier_agx(), fast_options());
  const auto stream =
      davis_stream(ee::DensityProfile::indoor_flying1(), 1'500'000, 5);
  const auto evedge = runtime.process(stream);
  const auto baseline = runtime.process_all_gpu_baseline(stream);
  EXPECT_LT(evedge.mean_service_per_frame_us,
            baseline.mean_service_per_frame_us);
  EXPECT_LT(evedge.energy_per_inference_mj(),
            baseline.energy_per_inference_mj());
}

TEST(Runtime, DeterministicAcrossConstructions) {
  const auto stream =
      davis_stream(ee::DensityProfile::indoor_flying1(), 800'000, 9);
  const ec::EvEdgeRuntime a(en::NetworkId::kDotie, eh::xavier_agx(),
                            fast_options());
  const ec::EvEdgeRuntime b(en::NetworkId::kDotie, eh::xavier_agx(),
                            fast_options());
  const auto sa = a.process(stream);
  const auto sb = b.process(stream);
  EXPECT_DOUBLE_EQ(sa.mean_latency_us, sb.mean_latency_us);
  EXPECT_DOUBLE_EQ(sa.total_energy_mj, sb.total_energy_mj);
}

// --------------------------------------------------- pipeline invariants

class PipelineProfiles : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineProfiles, AccountingInvariantsHoldOnEveryProfile) {
  const std::string name = GetParam();
  const auto profile = name == "indoor1"
                           ? ee::DensityProfile::indoor_flying1()
                       : name == "indoor2"
                           ? ee::DensityProfile::indoor_flying2()
                       : name == "outdoor"
                           ? ee::DensityProfile::outdoor_day1()
                           : ee::DensityProfile::dense_town10();
  const auto stream = davis_stream(profile, 1'500'000, 13);

  const auto platform = eh::xavier_agx();
  const auto spec = en::build_network(en::NetworkId::kAdaptiveSpikeNet,
                                      en::ZooConfig::full_scale());
  const auto densities = ec::measure_activation_densities(
      en::build_network(en::NetworkId::kAdaptiveSpikeNet,
                        en::ZooConfig::test_scale()),
      7);
  const auto mapping =
      ss::uniform_candidate({spec}, platform.first_pe(eh::PeKind::kGpu),
                            eq::Precision::kFp32)
          .tasks.front();

  ec::PipelineConfig cfg;
  cfg.use_e2sf = true;
  cfg.use_dsfa = true;
  cfg.frame_rate_hz = 30.0;
  const auto stats = ec::simulate_pipeline(stream, spec, mapping, platform,
                                           densities, cfg);

  EXPECT_GT(stats.frames_generated, 0u);
  EXPECT_GT(stats.inferences, 0u);
  // Every completed source frame was generated; drops never exceed input.
  EXPECT_LE(stats.source_frames_completed, stats.frames_generated);
  EXPECT_LE(stats.frames_dropped, stats.frames_generated);
  // Energy: busy is part of total; both positive.
  EXPECT_GT(stats.busy_energy_mj, 0.0);
  EXPECT_GE(stats.total_energy_mj, stats.busy_energy_mj);
  // Latency statistics ordered.
  EXPECT_LE(stats.mean_latency_us, stats.max_latency_us + 1e-9);
  EXPECT_LE(stats.p95_latency_us, stats.max_latency_us + 1e-9);
  EXPECT_GE(stats.mean_staleness_us, stats.mean_latency_us - 1e-9);
  // Device can't be busy longer than the simulated span.
  EXPECT_LE(stats.device_busy_us, stats.sim_span_us + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Profiles, PipelineProfiles,
                         ::testing::Values("indoor1", "indoor2", "outdoor",
                                           "town"));

TEST(PipelineIntegration, ChargingEncodeOverheadNeverHelps) {
  const auto platform = eh::xavier_agx();
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::full_scale());
  const auto densities = ec::measure_activation_densities(
      en::build_network(en::NetworkId::kSpikeFlowNet,
                        en::ZooConfig::test_scale()),
      7);
  const auto mapping =
      ss::uniform_candidate({spec}, platform.first_pe(eh::PeKind::kGpu),
                            eq::Precision::kFp32)
          .tasks.front();
  const auto stream =
      davis_stream(ee::DensityProfile::indoor_flying1(), 1'000'000, 3);

  ec::PipelineConfig direct;
  direct.use_e2sf = true;
  direct.use_dsfa = false;
  ec::PipelineConfig encoded = direct;
  encoded.charge_encode_overhead = true;
  const auto s_direct = ec::simulate_pipeline(stream, spec, mapping,
                                              platform, densities, direct);
  const auto s_encoded = ec::simulate_pipeline(stream, spec, mapping,
                                               platform, densities, encoded);
  EXPECT_LE(s_direct.mean_service_per_frame_us,
            s_encoded.mean_service_per_frame_us + 1e-9);
}

// ------------------------------------------- mapper/scheduler interplay

TEST(MapperIntegration, DlaNeverReceivesSpikingOrTransposedLayers) {
  const auto platform = eh::xavier_agx();
  std::vector<en::NetworkSpec> specs{en::build_network(
      en::NetworkId::kSpikeFlowNet, en::ZooConfig::test_scale())};
  const auto profiles = eh::profile_tasks(specs, platform);
  em::NmpConfig cfg;
  cfg.population = 8;
  cfg.generations = 4;
  em::NetworkMapper mapper(
      specs, profiles, platform,
      [](int, const ss::TaskMapping&) { return 0.0; }, cfg);

  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto candidate = mapper.random_candidate(seed);
    for (const auto& node_spec : specs[0].graph.nodes()) {
      const auto& a =
          candidate.tasks[0].nodes[static_cast<std::size_t>(node_spec.id)];
      if (a.pe < 0) continue;
      if (platform.pe(a.pe).kind == eh::PeKind::kDla) {
        EXPECT_TRUE(eh::supports_layer(platform.pe(a.pe),
                                       node_spec.spec.kind))
            << "DLA got " << en::to_string(node_spec.spec.kind);
      }
    }
  }
}

TEST(MapperIntegration, EnergyObjectiveFindsLowerEnergy) {
  const auto platform = eh::xavier_agx();
  std::vector<en::NetworkSpec> specs{
      en::build_network(en::NetworkId::kEvFlowNet,
                        en::ZooConfig::test_scale()),
      en::build_network(en::NetworkId::kHidalgoDepth,
                        en::ZooConfig::test_scale())};
  const auto profiles = eh::profile_tasks(specs, platform);
  const auto zero_accuracy = [](int, const ss::TaskMapping&) {
    return 0.0;
  };
  em::NmpConfig cfg;
  cfg.population = 14;
  cfg.generations = 12;
  cfg.seed = 3;
  em::NetworkMapper latency_mapper(specs, profiles, platform, zero_accuracy,
                                   cfg);
  cfg.objective = em::Objective::kEnergy;
  em::NetworkMapper energy_mapper(specs, profiles, platform, zero_accuracy,
                                  cfg);
  const auto r_latency = latency_mapper.run();
  const auto r_energy = energy_mapper.run();
  EXPECT_LE(r_energy.best_schedule.energy_mj,
            r_latency.best_schedule.energy_mj * 1.001);
}

TEST(MapperIntegration, ScheduleValidForRandomCandidatesSweep) {
  // Property: any candidate the mapper can generate must schedule
  // without violating queue exclusivity or dependency order.
  const auto platform = eh::xavier_agx();
  std::vector<en::NetworkSpec> specs{
      en::build_network(en::NetworkId::kFusionFlowNet,
                        en::ZooConfig::test_scale()),
      en::build_network(en::NetworkId::kDotie,
                        en::ZooConfig::test_scale())};
  const auto profiles = eh::profile_tasks(specs, platform);
  em::NmpConfig cfg;
  cfg.population = 6;
  cfg.generations = 2;
  em::NetworkMapper mapper(
      specs, profiles, platform,
      [](int, const ss::TaskMapping&) { return 0.0; }, cfg);

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto candidate = mapper.random_candidate(seed);
    const auto result =
        ss::schedule(specs, profiles, candidate, platform);
    EXPECT_GT(result.makespan_us, 0.0);
    for (const auto& op : result.ops) {
      EXPECT_GE(op.end_us, op.start_us);
    }
  }
}

// ----------------------------------------------------- artifact export

TEST(Artifacts, GanttCsvExportsAllOps) {
  const auto platform = eh::xavier_agx();
  std::vector<en::NetworkSpec> specs{en::build_network(
      en::NetworkId::kDotie, en::ZooConfig::test_scale())};
  const auto profiles = eh::profile_tasks(specs, platform);
  const auto candidate = ss::uniform_candidate(
      specs, platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  const auto result = ss::schedule(specs, profiles, candidate, platform);

  const auto path =
      (std::filesystem::temp_directory_path() / "evedge_gantt.csv").string();
  ss::write_gantt_csv(result, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t rows = 0;
  std::getline(in, line);  // header
  EXPECT_EQ(line, "task,node,is_comm,queue,start_us,end_us,precision");
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, result.ops.size());
  std::filesystem::remove(path);
}

// ---------------------------------------------- e2e accuracy integration

TEST(E2eIntegration, MergingDegradesRelativeToIdentity) {
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  const auto shape = spec.graph.node(0).spec.out_shape;
  ee::SynthConfig synth;
  synth.geometry = ee::SensorGeometry{shape.w, shape.h};
  synth.seed = 11;
  const auto stream =
      ee::PoissonEventSynthesizer(ee::DensityProfile::indoor_flying1(),
                                  synth)
          .generate(0, 600'000);

  // Capacity 1 means every bucket holds one frame: the reslotted input
  // is identical to the reference, so degradation is exactly zero. Any
  // real merging perturbs the temporal structure and degrades.
  ec::E2eAccuracyConfig identity;
  identity.apply_dsfa = true;
  identity.dsfa.merge_bucket_capacity = 1;
  identity.max_intervals = 3;
  ec::E2eAccuracyConfig merging = identity;
  merging.dsfa.merge_bucket_capacity = 5;

  const auto r_identity = ec::evaluate_e2e_accuracy(spec, stream, identity);
  const auto r_merging = ec::evaluate_e2e_accuracy(spec, stream, merging);
  // Cosine dissimilarity of numerically identical runs is zero up to
  // floating-point rounding.
  EXPECT_NEAR(r_identity.measured_degradation, 0.0, 1e-12);
  EXPECT_GT(r_merging.measured_degradation, 1e-9);
}

TEST(E2eIntegration, QuantizationAddsToMergeDegradation) {
  const auto spec = en::build_network(en::NetworkId::kEvFlowNet,
                                      en::ZooConfig::test_scale());
  const auto shape = spec.graph.node(0).spec.out_shape;
  ee::SynthConfig synth;
  synth.geometry = ee::SensorGeometry{shape.w, shape.h};
  synth.seed = 19;
  const auto stream =
      ee::PoissonEventSynthesizer(ee::DensityProfile::indoor_flying1(),
                                  synth)
          .generate(0, 600'000);

  ec::E2eAccuracyConfig merge_only;
  merge_only.apply_dsfa = true;
  merge_only.max_intervals = 2;
  ec::E2eAccuracyConfig merge_quant = merge_only;
  merge_quant.precisions =
      eq::uniform_assignment(spec, eq::Precision::kInt8);

  const auto r_merge = ec::evaluate_e2e_accuracy(spec, stream, merge_only);
  const auto r_both = ec::evaluate_e2e_accuracy(spec, stream, merge_quant);
  EXPECT_GE(r_both.measured_degradation, r_merge.measured_degradation);
}
