// NMP objective ablation (paper §4.3: "this procedure can be repeated to
// optimize for other objectives such as energy as well"): the same
// multi-task search run under latency, energy and energy-delay-product
// objectives, showing the latency/energy frontier each lands on.

#include <cstdio>

#include "bench_common.hpp"
#include "hw/profiler.hpp"
#include "mapper/nmp.hpp"
#include "quant/accuracy.hpp"

namespace eb = evedge::bench;
namespace eh = evedge::hw;
namespace em = evedge::mapper;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace ss = evedge::sched;

int main() {
  eb::print_header("NMP objective ablation (all-ANN config)");
  const auto platform = eh::xavier_agx();
  const auto config = en::multi_task_all_ann();

  std::vector<en::NetworkSpec> specs;
  for (const auto id : config.networks) {
    specs.push_back(en::build_network(id, en::ZooConfig::full_scale()));
  }
  const auto profiles = eh::profile_tasks(specs, platform);

  std::vector<eq::AccuracyEvaluator> evaluators;
  std::vector<eq::SensitivityModel> sensitivities;
  for (const auto id : config.networks) {
    const auto small = en::build_network(id, en::ZooConfig::test_scale());
    evaluators.emplace_back(small, 7, eq::make_validation_set(small, 2, 21));
    sensitivities.emplace_back(evaluators.back(), 1);
  }
  em::AccuracyFn accuracy = [&sensitivities](int task,
                                             const ss::TaskMapping& m) {
    eq::PrecisionMap p;
    for (std::size_t n = 0; n < m.nodes.size(); ++n) {
      if (m.nodes[n].pe >= 0) p[static_cast<int>(n)] = m.nodes[n].precision;
    }
    return sensitivities[static_cast<std::size_t>(task)].predict(p);
  };

  std::printf("%-22s %-14s %-12s %-14s\n", "objective", "latency[ms]",
              "energy[mJ]", "EDP[mJ*ms]");
  eb::print_rule(64);
  const em::Objective objectives[] = {em::Objective::kLatency,
                                      em::Objective::kEnergy,
                                      em::Objective::kEnergyDelayProduct};
  const char* names[] = {"latency (Eq. 2)", "energy",
                         "energy-delay product"};
  for (int i = 0; i < 3; ++i) {
    em::NmpConfig cfg;
    cfg.population = 24;
    cfg.generations = 24;
    cfg.objective = objectives[i];
    cfg.seed = 29;
    em::NetworkMapper mapper(specs, profiles, platform, accuracy, cfg);
    const auto result = mapper.run();
    const auto& s = result.best_schedule;
    std::printf("%-22s %-14.2f %-12.1f %-14.1f\n", names[i],
                s.max_task_latency_us / 1000.0, s.energy_mj,
                s.energy_mj * s.max_task_latency_us / 1000.0);
  }
  eb::print_rule(64);
  std::printf(
      "expected shape: the energy objective trades latency for DLA/INT8 "
      "placements; EDP sits between.\n");
  return 0;
}
