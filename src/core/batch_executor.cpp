#include "core/batch_executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace evedge::core {

using sparse::CooChannel;
using sparse::CooEntry;
using sparse::DenseTensor;
using sparse::SparseFrame;
using sparse::TensorShape;

namespace {

/// Integer downsample factor mapping a source extent onto a target one
/// (1 when the source already fits).
[[nodiscard]] int downsample_factor(int src_h, int src_w, int dst_h,
                                    int dst_w) {
  const int fy = (src_h + dst_h - 1) / dst_h;
  const int fx = (src_w + dst_w - 1) / dst_w;
  return std::max(1, std::max(fy, fx));
}

/// Scatters one COO channel into the dense plane at `plane` (extent
/// dst_h x dst_w, row stride dst_w), downsampling coordinates by
/// `factor` and center-aligning; values accumulate, out-of-extent
/// coordinates are cropped.
void scatter_adapted(const CooChannel& ch, int factor, int off_y, int off_x,
                     int dst_h, int dst_w, float* plane) {
  for (const CooEntry& e : ch.entries()) {
    const int ty = e.row / factor + off_y;
    const int tx = e.col / factor + off_x;
    if (ty < 0 || ty >= dst_h || tx < 0 || tx >= dst_w) continue;
    plane[static_cast<std::size_t>(ty) * static_cast<std::size_t>(dst_w) +
          static_cast<std::size_t>(tx)] += e.value;
  }
}

}  // namespace

void frames_to_event_steps(const std::vector<SparseFrame>& frames,
                           const TensorShape& event_shape, int timesteps,
                           std::vector<DenseTensor>& steps) {
  if (frames.empty()) {
    throw std::invalid_argument("frames_to_event_steps: empty batch");
  }
  const int batch = static_cast<int>(frames.size());
  const int h = event_shape.h;
  const int w = event_shape.w;
  // SNN/hybrid nets take a 2-channel tensor per timestep; pure ANN nets
  // stack all bins as channels. Either way the event input has 2 channels
  // per bin slot, and the merged frame fills every slot.
  const int bins = std::max(1, event_shape.c / 2);
  const TensorShape step_shape{batch, event_shape.c, h, w};

  steps.resize(static_cast<std::size_t>(timesteps));
  DenseTensor& step0 = steps.front();
  step0.reset(step_shape);
  std::fill(step0.data().begin(), step0.data().end(), 0.0f);
  for (int n = 0; n < batch; ++n) {
    const SparseFrame& frame = frames[static_cast<std::size_t>(n)];
    const int factor = downsample_factor(frame.height(), frame.width(), h, w);
    const int off_y = (h - (frame.height() + factor - 1) / factor) / 2;
    const int off_x = (w - (frame.width() + factor - 1) / factor) / 2;
    for (int b = 0; b < bins; ++b) {
      float* pos = step0.raw() + step0.offset(n, 2 * b, 0, 0);
      scatter_adapted(frame.positive(), factor, off_y, off_x, h, w, pos);
      if (2 * b + 1 < event_shape.c) {
        float* neg = step0.raw() + step0.offset(n, 2 * b + 1, 0, 0);
        scatter_adapted(frame.negative(), factor, off_y, off_x, h, w, neg);
      }
    }
  }
  // Identical event evidence at every timestep.
  for (std::size_t t = 1; t < steps.size(); ++t) steps[t] = step0;
}

DenseTensor make_reference_image(const nn::NetworkSpec& spec) {
  const auto input_ids = spec.graph.input_ids();
  if (input_ids.size() < 2) return DenseTensor{};
  DenseTensor image(spec.graph.node(input_ids.back()).spec.out_shape);
  image.fill_random(1234, 0.5f);
  for (float& v : image.data()) v = std::abs(v);
  return image;
}

BatchExecutor::BatchExecutor(nn::FunctionalNetwork& net) : net_(net) {
  const nn::NetworkSpec& spec = net_.spec();
  const auto input_ids = spec.graph.input_ids();
  event_shape_ = spec.graph.node(input_ids.front()).spec.out_shape;
  needs_image_ = input_ids.size() > 1;
  if (needs_image_) image_ = make_reference_image(spec);
}

BatchExecutor::~BatchExecutor() {
  // The network outlives the executor (constructor contract), but the
  // plan dies with us — never leave a dangling plan installed. Only
  // uninstall if ours is still the active plan (a caller may have
  // installed its own since).
  if (plan_ready_ && net_.execution_plan() == &plan_) {
    net_.set_execution_plan(nullptr);
  }
}

void BatchExecutor::enable_execution_planner(
    const nn::PlannerOptions& options) {
  planner_enabled_ = true;
  planner_options_ = options;
}

const DenseTensor& BatchExecutor::execute(
    const std::vector<SparseFrame>& frames) {
  if (frames.empty()) {
    throw std::invalid_argument("BatchExecutor::execute: empty batch");
  }
  const nn::NetworkSpec& spec = net_.spec();
  const int batch = static_cast<int>(frames.size());
  frames_to_event_steps(frames, event_shape_, spec.timesteps, steps_);

  if (planner_enabled_ && !plan_ready_) {
    // First dispatched batch = warmup probe. calibrate() runs batch-1
    // inputs, so probe on sample 0's slice; DSFA merges within a density
    // band, so one sample's densities represent the batch.
    if (batch == 1) {
      plan_ = nn::ExecutionPlanner::calibrate(
          net_, steps_, needs_image_ ? &image_ : nullptr, planner_options_);
    } else {
      std::vector<DenseTensor> probe(steps_.size());
      for (std::size_t t = 0; t < steps_.size(); ++t) {
        sparse::copy_sample(steps_[t], 0, probe[t]);
      }
      plan_ = nn::ExecutionPlanner::calibrate(
          net_, probe, needs_image_ ? &image_ : nullptr, planner_options_);
    }
    net_.set_execution_plan(&plan_);
    plan_ready_ = true;
  }

  const auto t0 = std::chrono::steady_clock::now();
  last_output_ =
      net_.run_batched(steps_, needs_image_ ? &image_ : nullptr);
  const auto t1 = std::chrono::steady_clock::now();

  ++stats_.batches;
  stats_.samples += frames.size();
  stats_.wall_ms +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return last_output_;
}

}  // namespace evedge::core
