#pragma once

// Deterministic fault injection for the serving runtime. A FaultPlan is
// a list of (site, fault) pairs — sites are either per-stream dispatch
// points (stream_id, seq) or per-worker batch points (worker_id, batch)
// — plus the seed that generated it, so every run of the same plan
// exercises the same recovery paths. The FaultInjector indexes the plan
// immutably before any serving thread starts (thread-safe lookups with
// no locking) and counts what actually fired in atomics.
//
// Fault taxonomy (what each one exercises):
//   kWorkerException   worker supervision: restart on a fresh clone,
//                      re-enqueue with retry budget + backoff
//   kLatencySpike      SLO shedding / degradation ladder under stall
//   kCorruptFrame      ingress validation + quarantine accounting
//   kStreamStall       cross-stream isolation under a slow producer
//   kStreamDisconnect  per-stream failure without killing the run

#include <atomic>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/serve_stats.hpp"
#include "sparse/sparse_frame.hpp"

namespace evedge::serve {

enum class FaultType : std::uint8_t {
  kWorkerException,   ///< throw inside the worker's batch loop
  kLatencySpike,      ///< sleep before inference (worker site)
  kCorruptFrame,      ///< mangle the frame before ingress validation
  kStreamStall,       ///< sleep inside the ingress dispatch (stream site)
  kStreamDisconnect,  ///< stop the ingress mid-stream (stream site)
};

[[nodiscard]] const char* to_string(FaultType type) noexcept;

/// How kCorruptFrame mangles the frame (each maps to one FrameFault the
/// ingress validator must catch).
enum class CorruptKind : std::uint8_t {
  kOutOfBoundsCoordinate,
  kBadTiming,
  kNonFiniteValue,
};

/// One fault at one site. Stream-site faults (corrupt / stall /
/// disconnect) key on (stream_id, seq); worker-site faults (exception /
/// spike) key on (worker_id, batch) where `batch` is the worker's
/// local attempt index (0, 1, ...). Unused site fields stay -1.
struct FaultSpec {
  FaultType type = FaultType::kWorkerException;
  int stream_id = -1;
  std::int64_t seq = -1;
  int worker_id = -1;
  std::int64_t batch = -1;
  double delay_ms = 0.0;  ///< spike / stall duration
  CorruptKind corrupt = CorruptKind::kOutOfBoundsCoordinate;
};

/// Knobs for FaultPlan::seeded — how many of each fault to scatter over
/// how large a site space.
struct FaultPlanOptions {
  int streams = 1;
  int workers = 1;
  /// Upper bound (exclusive) for drawn per-stream seq sites; keep it at
  /// or below the real dispatch count so every drawn fault can fire.
  std::int64_t frames_per_stream_hint = 16;
  /// Upper bound (exclusive) for drawn per-worker batch sites.
  std::int64_t batches_per_worker_hint = 4;
  int worker_exceptions = 0;
  int latency_spikes = 0;
  int corrupt_frames = 0;
  int stalls = 0;
  int disconnects = 0;
  double spike_ms = 5.0;
  double stall_ms = 5.0;
};

/// A reproducible fault schedule. Build explicitly via add() for
/// pin-point tests, or draw one from a seed for soak runs.
struct FaultPlan {
  std::vector<FaultSpec> specs;
  std::uint64_t seed = 0;

  FaultPlan& add(FaultSpec spec) {
    specs.push_back(spec);
    return *this;
  }
  [[nodiscard]] bool empty() const noexcept { return specs.empty(); }

  /// Deterministically scatters the requested fault counts over the
  /// site space: same (seed, options) -> identical plan, bit for bit.
  /// Disconnects target distinct streams (at most one each — a stream
  /// cannot disconnect twice) at seq sites in the upper half of the
  /// hint so some frames flow first.
  [[nodiscard]] static FaultPlan seeded(std::uint64_t seed,
                                        const FaultPlanOptions& options);
};

/// Thrown by injected worker exceptions (and by nothing else), so tests
/// can tell an injected crash from a real defect escaping supervision.
class FaultInjectionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Immutable site index over a FaultPlan plus fired-fault counters. The
/// index is built once on the coordinating thread; lookups from ingress
/// and worker threads touch only const data, and record() is atomic —
/// no locks anywhere (TSan-clean by construction).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// Faults scheduled at stream site (stream_id, seq); empty span when
  /// none.
  [[nodiscard]] std::span<const FaultSpec> at_stream(
      int stream_id, std::int64_t seq) const;

  /// Faults scheduled at worker site (worker_id, batch).
  [[nodiscard]] std::span<const FaultSpec> at_worker(
      int worker_id, std::int64_t batch) const;

  /// Counts a fired fault (called by the thread that fired it).
  void record(FaultType type) noexcept;

  /// Snapshot of the fired-fault counters.
  [[nodiscard]] FaultInjectionCounts counts() const noexcept;

  /// Applies `spec` (type kCorruptFrame) to the frame: fabricates the
  /// requested malformation via the unchecked COO constructor, exactly
  /// the damage a buggy sensor driver would deliver.
  static void corrupt(const FaultSpec& spec, sparse::SparseFrame& frame);

 private:
  // Sites keyed by (id << 32 | index); built in the ctor, const after.
  std::unordered_map<std::uint64_t, std::vector<FaultSpec>> stream_sites_;
  std::unordered_map<std::uint64_t, std::vector<FaultSpec>> worker_sites_;
  std::atomic<std::size_t> worker_exceptions_{0};
  std::atomic<std::size_t> latency_spikes_{0};
  std::atomic<std::size_t> corrupt_frames_{0};
  std::atomic<std::size_t> stream_stalls_{0};
  std::atomic<std::size_t> stream_disconnects_{0};
};

}  // namespace evedge::serve
