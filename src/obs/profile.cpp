#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>

#include "hw/profiler.hpp"
#include "obs/trace.hpp"

namespace evedge::obs {

LayerProfiler::LayerProfiler(const nn::NetworkSpec& spec, bool emit_spans)
    : emit_spans_(emit_spans) {
  const std::size_t n = spec.graph.size();
  cells_.resize(n * kRoutes);
  names_.reserve(n);
  for (const nn::LayerNode& node : spec.graph.nodes()) {
    names_.push_back(intern_name(node.spec.name));
  }
}

void LayerProfiler::on_node(int node_id, nn::Route route, int timestep,
                            std::uint64_t t0_ns, std::uint64_t t1_ns,
                            int tile, int tile_count) noexcept {
  const auto idx = static_cast<std::size_t>(node_id);
  if (idx >= names_.size()) return;
  const std::uint64_t dur = t1_ns >= t0_ns ? t1_ns - t0_ns : 0;
  Cell& cell =
      cells_[idx * kRoutes + static_cast<std::size_t>(route)];
  // Tile fragments are slices of one logical node execution: only the
  // first fragment counts a run, every fragment's wall time accumulates
  // (so observed() keeps matching ExecStats::node_executions).
  cell.runs += tile == 0 ? 1 : 0;
  cell.total_ns += dur;
  cell.max_ns = std::max(cell.max_ns, dur);
  if (emit_spans_ && Tracer::enabled()) {
    // The engine stamps raw steady_clock ns; rebase onto the trace
    // epoch so node spans nest under the worker's inference spans.
    const std::uint64_t base = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            trace_epoch().time_since_epoch())
            .count());
    const std::uint64_t t0 = t0_ns >= base ? t0_ns - base : 0;
    if (tile_count > 1) {
      Tracer::span("node", names_[idx], t0, t0 + dur, "timestep",
                   timestep, "tile", static_cast<std::int64_t>(tile));
    } else {
      Tracer::span("node", names_[idx], t0, t0 + dur, "timestep",
                   timestep, "route", static_cast<std::int64_t>(route));
    }
  }
}

std::vector<NodeRouteProfile> LayerProfiler::snapshot() const {
  std::vector<NodeRouteProfile> out;
  for (std::size_t idx = 0; idx < names_.size(); ++idx) {
    for (int r = 0; r < kRoutes; ++r) {
      const Cell& cell = cells_[idx * kRoutes + static_cast<std::size_t>(r)];
      if (cell.runs == 0) continue;
      NodeRouteProfile row;
      row.node_id = static_cast<int>(idx);
      row.name = names_[idx];
      row.route = static_cast<nn::Route>(r);
      row.runs = cell.runs;
      row.total_ns = cell.total_ns;
      row.max_ns = cell.max_ns;
      out.push_back(std::move(row));
    }
  }
  return out;
}

std::uint64_t LayerProfiler::observed() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& cell : cells_) total += cell.runs;
  return total;
}

void LayerProfiler::reset() noexcept {
  std::fill(cells_.begin(), cells_.end(), Cell{});
}

std::string ProfileCrossCheckReport::text() const {
  std::string out = "layer profile cross-check: " + network + " vs " +
                    pe_name + " FP32 analytic (" +
                    std::to_string(inferences) + " inferences)\n";
  char buf[160];
  std::snprintf(buf, sizeof buf, "  %-4s %-24s %12s %12s %8s\n", "id",
                "node", "measured_us", "analytic_us", "ratio");
  out += buf;
  for (const ProfileCrossCheckRow& row : rows) {
    if (row.analytic_us > 0.0) {
      std::snprintf(buf, sizeof buf, "  %-4d %-24s %12.2f %12.2f %8.3f\n",
                    row.node_id, row.name.c_str(), row.measured_us,
                    row.analytic_us, row.ratio);
    } else {
      std::snprintf(buf, sizeof buf, "  %-4d %-24s %12.2f %12s %8s\n",
                    row.node_id, row.name.c_str(), row.measured_us,
                    row.mappable ? "n/a" : "pinned", "-");
    }
    out += buf;
  }
  return out;
}

ProfileCrossCheckReport cross_check_profiles(
    const nn::NetworkSpec& spec, std::span<const NodeRouteProfile> measured,
    const hw::Platform& platform, std::uint64_t inferences) {
  ProfileCrossCheckReport report;
  report.network = spec.name;
  report.inferences = inferences;
  const int gpu = platform.first_pe(hw::PeKind::kGpu);
  report.pe_name = platform.pe(gpu).name;

  // Routes summed per node: the cross-check compares total node wall
  // time per inference, whichever kernels served it.
  std::vector<std::uint64_t> total_ns(spec.graph.size(), 0);
  for (const NodeRouteProfile& row : measured) {
    if (row.node_id >= 0 &&
        static_cast<std::size_t>(row.node_id) < total_ns.size()) {
      total_ns[static_cast<std::size_t>(row.node_id)] += row.total_ns;
    }
  }

  const hw::TaskProfile analytic = hw::profile_task(spec, platform);
  for (const nn::LayerNode& node : spec.graph.nodes()) {
    const auto idx = static_cast<std::size_t>(node.id);
    ProfileCrossCheckRow row;
    row.node_id = node.id;
    row.name = node.spec.name;
    const hw::NodeProfile& np = analytic.node(node.id);
    row.mappable = np.mappable;
    if (inferences > 0) {
      row.measured_us = static_cast<double>(total_ns[idx]) / 1e3 /
                        static_cast<double>(inferences);
    }
    if (np.mappable && np.supported(gpu, hw::Precision::kFp32)) {
      row.analytic_us = np.time(gpu, hw::Precision::kFp32);
    }
    if (row.analytic_us > 0.0) {
      row.ratio = row.measured_us / row.analytic_us;
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace evedge::obs
