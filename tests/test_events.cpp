// Unit and property tests for the events substrate: AER streams, the DVS
// sensor model, procedural scenes, density profiles, the Poisson
// synthesizer, statistics and IO.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "events/density_profile.hpp"
#include "events/dvs_sensor.hpp"
#include "events/event_stream.hpp"
#include "events/event_synth.hpp"
#include "events/io.hpp"
#include "events/scene.hpp"
#include "events/stats.hpp"

namespace ee = evedge::events;

// ---------------------------------------------------------------- streams

TEST(EventStream, PushBackKeepsOrderAndGeometry) {
  ee::EventStream s(ee::SensorGeometry{10, 8});
  s.push_back({1, 2, 100, ee::Polarity::kPositive});
  s.push_back({3, 4, 100, ee::Polarity::kNegative});
  s.push_back({5, 6, 250, ee::Polarity::kPositive});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.t_begin(), 100);
  EXPECT_EQ(s.t_end(), 250);
  EXPECT_NO_THROW(s.validate());
}

TEST(EventStream, RejectsTimeRegression) {
  ee::EventStream s(ee::SensorGeometry{10, 8});
  s.push_back({0, 0, 100, ee::Polarity::kPositive});
  EXPECT_THROW(s.push_back({0, 0, 99, ee::Polarity::kPositive}),
               std::invalid_argument);
}

TEST(EventStream, RejectsOutOfGeometry) {
  ee::EventStream s(ee::SensorGeometry{10, 8});
  EXPECT_THROW(s.push_back({10, 0, 0, ee::Polarity::kPositive}),
               std::invalid_argument);
  EXPECT_THROW(s.push_back({0, 8, 0, ee::Polarity::kPositive}),
               std::invalid_argument);
}

TEST(EventStream, SliceIsHalfOpenAndComplete) {
  ee::EventStream s(ee::SensorGeometry{4, 4});
  for (int i = 0; i < 10; ++i) {
    s.push_back({0, 0, i * 10, ee::Polarity::kPositive});
  }
  EXPECT_EQ(s.slice(0, 100).size(), 10u);
  EXPECT_EQ(s.slice(0, 90).size(), 9u);   // t=90 excluded
  EXPECT_EQ(s.slice(10, 20).size(), 1u);  // only t=10
  EXPECT_EQ(s.slice(95, 300).size(), 0u);
  EXPECT_EQ(s.count_in(0, 50) + s.count_in(50, 100), s.size());
}

TEST(EventStream, EmptyStreamThrowsOnTimeQueries) {
  ee::EventStream s(ee::SensorGeometry{4, 4});
  EXPECT_THROW((void)s.t_begin(), std::logic_error);
  EXPECT_THROW((void)s.t_end(), std::logic_error);
}

TEST(FrameClock, UniformSpacing) {
  const auto clock = ee::FrameClock::uniform(1000, 50, 4);
  ASSERT_EQ(clock.timestamps.size(), 4u);
  EXPECT_EQ(clock.timestamps[0], 1000);
  EXPECT_EQ(clock.timestamps[3], 1150);
  EXPECT_EQ(clock.interval_count(), 3u);
}

// ------------------------------------------------------------- DVS model

TEST(DvsSensor, NoEventsForStaticScene) {
  ee::DvsSensor sensor(ee::SensorGeometry{8, 8}, ee::DvsConfig{});
  ee::IntensityFrame frame;
  frame.width = 8;
  frame.height = 8;
  frame.intensity.assign(64, 0.5f);
  frame.t = 0;
  sensor.process_frame(frame);
  frame.t = 1000;
  sensor.process_frame(frame);
  frame.t = 2000;
  sensor.process_frame(frame);
  EXPECT_TRUE(sensor.stream().empty());
}

TEST(DvsSensor, BrighteningPixelFiresPositive) {
  ee::DvsSensor sensor(ee::SensorGeometry{2, 2},
                       ee::DvsConfig{0.2, 0.0, 1e-3f});
  ee::IntensityFrame frame;
  frame.width = 2;
  frame.height = 2;
  frame.intensity = {0.2f, 0.2f, 0.2f, 0.2f};
  frame.t = 0;
  sensor.process_frame(frame);
  frame.intensity = {0.8f, 0.2f, 0.2f, 0.2f};  // pixel (0,0) brightens
  frame.t = 1000;
  sensor.process_frame(frame);
  ASSERT_GT(sensor.stream().size(), 0u);
  for (const ee::Event& e : sensor.stream().events()) {
    EXPECT_EQ(e.x, 0);
    EXPECT_EQ(e.y, 0);
    EXPECT_EQ(e.p, ee::Polarity::kPositive);
    EXPECT_GT(e.t, 0);
    EXPECT_LE(e.t, 1000);
  }
  // log(0.8/0.2) ~ 1.386 -> floor(1.386/0.2) = 6 events.
  EXPECT_EQ(sensor.stream().size(), 6u);
}

TEST(DvsSensor, DimmingPixelFiresNegative) {
  ee::DvsSensor sensor(ee::SensorGeometry{2, 2},
                       ee::DvsConfig{0.3, 0.0, 1e-3f});
  ee::IntensityFrame frame;
  frame.width = 2;
  frame.height = 2;
  frame.intensity = {0.9f, 0.5f, 0.5f, 0.5f};
  frame.t = 0;
  sensor.process_frame(frame);
  frame.intensity = {0.1f, 0.5f, 0.5f, 0.5f};
  frame.t = 500;
  sensor.process_frame(frame);
  ASSERT_GT(sensor.stream().size(), 0u);
  for (const ee::Event& e : sensor.stream().events()) {
    EXPECT_EQ(e.p, ee::Polarity::kNegative);
  }
}

TEST(DvsSensor, RefractoryPeriodSuppressesEvents) {
  // Large change would emit many events; a refractory period as long as
  // the frame gap keeps at most one per pixel.
  ee::DvsSensor strict(ee::SensorGeometry{1, 1},
                       ee::DvsConfig{0.1, 1000.0, 1e-3f});
  ee::IntensityFrame frame;
  frame.width = 1;
  frame.height = 1;
  frame.intensity = {0.1f};
  frame.t = 0;
  strict.process_frame(frame);
  frame.intensity = {0.9f};
  frame.t = 1000;
  strict.process_frame(frame);
  EXPECT_LE(strict.stream().size(), 1u);
}

TEST(DvsSensor, SubthresholdChangeAccumulates) {
  // Two +0.6-threshold steps: neither alone fires, the memory accumulates
  // and the second crosses.
  ee::DvsSensor sensor(ee::SensorGeometry{1, 1},
                       ee::DvsConfig{0.5, 0.0, 1e-3f});
  ee::IntensityFrame frame;
  frame.width = 1;
  frame.height = 1;
  frame.intensity = {0.5f};
  frame.t = 0;
  sensor.process_frame(frame);
  frame.intensity = {0.65f};  // log ratio ~ 0.26 < 0.5
  frame.t = 100;
  sensor.process_frame(frame);
  EXPECT_EQ(sensor.stream().size(), 0u);
  frame.intensity = {0.9f};  // cumulative log ratio ~ 0.59 > 0.5
  frame.t = 200;
  sensor.process_frame(frame);
  EXPECT_EQ(sensor.stream().size(), 1u);
}

TEST(DvsSensor, RejectsNonMonotoneFrames) {
  ee::DvsSensor sensor(ee::SensorGeometry{2, 2}, ee::DvsConfig{});
  ee::IntensityFrame frame;
  frame.width = 2;
  frame.height = 2;
  frame.intensity.assign(4, 0.5f);
  frame.t = 100;
  sensor.process_frame(frame);
  frame.t = 100;
  EXPECT_THROW(sensor.process_frame(frame), std::invalid_argument);
}

// ----------------------------------------------------------------- scenes

TEST(Scenes, MovingBarProducesTimeOrderedEventsInsideGeometry) {
  ee::MovingBarScene scene(ee::MovingBarScene::Params{
      ee::SensorGeometry{32, 24}, 200.0, 3, 0.1, 0.9});
  const auto stream =
      ee::simulate_dvs(scene, 0, 200'000, 1000.0, ee::DvsConfig{});
  ASSERT_GT(stream.size(), 100u);
  EXPECT_NO_THROW(stream.validate());
}

TEST(Scenes, FasterBarYieldsMoreEvents) {
  const ee::DvsConfig dvs{};
  ee::MovingBarScene slow(ee::MovingBarScene::Params{
      ee::SensorGeometry{32, 24}, 60.0, 3, 0.1, 0.9});
  ee::MovingBarScene fast(ee::MovingBarScene::Params{
      ee::SensorGeometry{32, 24}, 240.0, 3, 0.1, 0.9});
  const auto s_slow = ee::simulate_dvs(slow, 0, 150'000, 2000.0, dvs);
  const auto s_fast = ee::simulate_dvs(fast, 0, 150'000, 2000.0, dvs);
  EXPECT_GT(s_fast.size(), s_slow.size());
}

TEST(Scenes, TexturedTranslationHasUniformGroundTruthFlow) {
  ee::TexturedTranslationScene scene(ee::TexturedTranslationScene::Params{
      ee::SensorGeometry{16, 12}, 30.0, -12.0, 3, 0.5, 0.4, 9});
  const auto flow = scene.ground_truth_flow(0);
  for (float v : flow.vx) EXPECT_FLOAT_EQ(v, 30.0f);
  for (float v : flow.vy) EXPECT_FLOAT_EQ(v, -12.0f);
}

TEST(Scenes, DriftingDotsSparseActivity) {
  ee::DriftingDotsScene scene(ee::DriftingDotsScene::Params{
      ee::SensorGeometry{48, 36}, 5, 1.5, 80.0, 0.0, 0.05, 0.9, 3});
  const auto stream =
      ee::simulate_dvs(scene, 0, 100'000, 1000.0, ee::DvsConfig{});
  ASSERT_GT(stream.size(), 0u);
  // Sparse stimulus: well below 30% of pixels active over the whole run.
  EXPECT_LT(ee::frame_fill_ratio(stream, 0, 100'000), 0.3);
}

// ------------------------------------------------------ density profiles

TEST(DensityProfile, PresetsAreNonNegativeEverywhere) {
  for (const auto& profile :
       {ee::DensityProfile::indoor_flying1(),
        ee::DensityProfile::indoor_flying2(), ee::DensityProfile::outdoor_day1(),
        ee::DensityProfile::dense_town10()}) {
    for (double t = 0.0; t < 10.0; t += 0.05) {
      EXPECT_GE(profile.rate_per_pixel(t), 0.0) << profile.name();
    }
  }
}

TEST(DensityProfile, IndoorFlyingIsBurstier) {
  // The drone profiles must show higher burst-to-base ratio than driving.
  const auto indoor = ee::DensityProfile::indoor_flying2();
  const auto outdoor = ee::DensityProfile::outdoor_day1();
  double indoor_peak = 0.0;
  double outdoor_peak = 0.0;
  for (double t = 0.0; t < 9.0; t += 0.01) {
    indoor_peak = std::max(indoor_peak, indoor.rate_per_pixel(t));
    outdoor_peak = std::max(outdoor_peak, outdoor.rate_per_pixel(t));
  }
  const double indoor_ratio = indoor_peak / indoor.mean_rate_per_pixel(0, 9);
  const double outdoor_ratio =
      outdoor_peak / outdoor.mean_rate_per_pixel(0, 9);
  EXPECT_GT(indoor_ratio, 2.0);
  EXPECT_GT(indoor_ratio, outdoor_ratio);
}

// ---------------------------------------------------------- synthesizer

TEST(PoissonSynth, EventCountTracksProfileIntegral) {
  const ee::SensorGeometry g{64, 48};
  ee::SynthConfig cfg;
  cfg.geometry = g;
  cfg.seed = 123;
  const auto profile = ee::DensityProfile::indoor_flying1();
  ee::PoissonEventSynthesizer synth(profile, cfg);
  const ee::TimeUs duration = 2'000'000;
  const auto stream = synth.generate(0, duration);
  const double expected = profile.mean_rate_per_pixel(0.0, 2.0) *
                          static_cast<double>(g.pixel_count()) * 2.0;
  ASSERT_GT(stream.size(), 0u);
  const double actual = static_cast<double>(stream.size());
  EXPECT_NEAR(actual / expected, 1.0, 0.15);
}

TEST(PoissonSynth, DeterministicForSameSeed) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{32, 24};
  cfg.seed = 77;
  ee::PoissonEventSynthesizer a(ee::DensityProfile::indoor_flying2(), cfg);
  ee::PoissonEventSynthesizer b(ee::DensityProfile::indoor_flying2(), cfg);
  const auto sa = a.generate(0, 300'000);
  const auto sb = b.generate(0, 300'000);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.events()[i], sb.events()[i]);
  }
}

TEST(PoissonSynth, StreamIsValidAndBothPolaritiesPresent) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{32, 24};
  ee::PoissonEventSynthesizer synth(ee::DensityProfile::outdoor_day1(), cfg);
  const auto s = synth.generate(0, 500'000);
  EXPECT_NO_THROW(s.validate());
  std::size_t pos = 0;
  for (const ee::Event& e : s.events()) {
    if (e.p == ee::Polarity::kPositive) ++pos;
  }
  EXPECT_GT(pos, 0u);
  EXPECT_LT(pos, s.size());
}

// ------------------------------------------------------------ statistics

TEST(Stats, TemporalDensityTraceCoversAllEvents) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{32, 24};
  ee::PoissonEventSynthesizer synth(ee::DensityProfile::indoor_flying2(),
                                    cfg);
  const auto s = synth.generate(0, 1'000'000);
  const auto trace = ee::temporal_density_trace(s, 50'000);
  std::size_t total = 0;
  for (const auto& w : trace) total += w.event_count;
  EXPECT_EQ(total, s.size());
}

TEST(Stats, BurstProfileHasHighVariation) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{64, 48};
  cfg.seed = 5;
  ee::PoissonEventSynthesizer indoor(ee::DensityProfile::indoor_flying2(),
                                     cfg);
  const auto s = indoor.generate(0, 8'000'000);
  const auto summary = ee::summarize(ee::temporal_density_trace(s, 100'000));
  // Fig. 5 shape: bursty, peak well above mean.
  EXPECT_GT(summary.peak_rate, 2.0 * summary.mean_rate);
  EXPECT_GT(summary.coefficient_of_variation, 0.4);
}

TEST(Stats, FillRatioBounds) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{32, 24};
  ee::PoissonEventSynthesizer synth(ee::DensityProfile::indoor_flying1(),
                                    cfg);
  const auto s = synth.generate(0, 400'000);
  const double r = ee::frame_fill_ratio(s, 0, 400'000);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1.0);
  // Tiny window: far fewer active pixels.
  const double r_small = ee::frame_fill_ratio(s, 0, 1'000);
  EXPECT_LE(r_small, r);
}

TEST(Stats, MeanBinFillRatioDecreasesWithMoreBins) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{64, 48};
  ee::PoissonEventSynthesizer synth(ee::DensityProfile::outdoor_day1(), cfg);
  const auto s = synth.generate(0, 1'000'000);
  const auto clock = ee::FrameClock::uniform(0, 200'000, 6);
  const double d5 = ee::mean_bin_fill_ratio(s, clock, 5);
  const double d20 = ee::mean_bin_fill_ratio(s, clock, 20);
  EXPECT_GT(d5, d20);  // finer bins -> sparser frames
}

// ------------------------------------------------------------------- IO

TEST(Io, BinaryRoundTrip) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{32, 24};
  ee::PoissonEventSynthesizer synth(ee::DensityProfile::indoor_flying1(),
                                    cfg);
  const auto s = synth.generate(0, 200'000);
  const auto path = std::filesystem::temp_directory_path() /
                    "evedge_test_events.bin";
  ee::write_binary(s, path);
  const auto loaded = ee::read_binary(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.size(), s.size());
  EXPECT_EQ(loaded.geometry(), s.geometry());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(loaded.events()[i], s.events()[i]);
  }
}

TEST(Io, ReadRejectsGarbage) {
  const auto path =
      std::filesystem::temp_directory_path() / "evedge_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not an event file", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)ee::read_binary(path), std::runtime_error);
  std::filesystem::remove(path);
}
