#include "core/e2sf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evedge::core {

using events::Event;
using events::Polarity;
using events::TimeUs;
using sparse::CooEntry;
using sparse::SparseFrame;

Event2SparseFrame::Event2SparseFrame(events::SensorGeometry geometry,
                                     E2sfConfig config)
    : geometry_(geometry), config_(config) {
  events::validate_geometry(geometry_);
  if (config_.n_bins <= 0) {
    throw std::invalid_argument("E2SF: n_bins must be > 0");
  }
}

std::vector<SparseFrame> Event2SparseFrame::convert(
    std::span<const Event> window, TimeUs t_start, TimeUs t_end) const {
  if (t_end <= t_start) {
    throw std::invalid_argument("E2SF: t_end must exceed t_start");
  }
  const int n_bins = config_.n_bins;
  const double bin_span =
      static_cast<double>(t_end - t_start) / n_bins;  // biS of Eq. 1

  // Per-bin per-polarity accumulation buffers. Two passes: count first so
  // every per-bin vector is allocated exactly once (the windows here can
  // carry hundreds of thousands of events per interval).
  std::vector<std::vector<CooEntry>> pos(static_cast<std::size_t>(n_bins));
  std::vector<std::vector<CooEntry>> neg(static_cast<std::size_t>(n_bins));
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n_bins), 0);
  std::vector<std::size_t> pos_count(static_cast<std::size_t>(n_bins), 0);
  std::vector<std::size_t> neg_count(static_cast<std::size_t>(n_bins), 0);

  // EBk = floor((tk - Tstart) / biS); clamp the t == Tend-epsilon edge.
  const auto bin_of = [&](const Event& e) {
    const auto bin = static_cast<int>(
        std::floor(static_cast<double>(e.t - t_start) / bin_span));
    return static_cast<std::size_t>(std::clamp(bin, 0, n_bins - 1));
  };

  // Validation rides the counting pass (no extra sweep): raw windows
  // from live drivers can carry malformed events, and the COO channels
  // below adopt coordinates unchecked.
  TimeUs prev_t = t_start;
  for (std::size_t i = 0; i < window.size(); ++i) {
    const Event& e = window[i];
    if (!geometry_.contains(e.x, e.y)) {
      throw MalformedEventError(
          MalformedEventError::Kind::kOutOfBounds, i,
          "E2SF: event " + std::to_string(i) + " at (x=" +
              std::to_string(e.x) + ", y=" + std::to_string(e.y) +
              ") is outside the " + std::to_string(geometry_.width) + "x" +
              std::to_string(geometry_.height) + " sensor geometry");
    }
    if (e.t < prev_t) {
      throw MalformedEventError(
          MalformedEventError::Kind::kNonMonotonicTimestamp, i,
          "E2SF: event " + std::to_string(i) +
              " timestamp runs backwards (" + std::to_string(e.t) +
              " after " + std::to_string(prev_t) + ")");
    }
    prev_t = e.t;
    if (e.t < t_start || e.t >= t_end) {
      throw MalformedEventError(
          MalformedEventError::Kind::kOutsideInterval, i,
          "E2SF: event " + std::to_string(i) + " at t=" +
              std::to_string(e.t) + " is outside the frame interval [" +
              std::to_string(t_start) + ", " + std::to_string(t_end) +
              ") — slice the stream first");
    }
    ++(e.p == Polarity::kPositive ? pos_count : neg_count)[bin_of(e)];
  }
  for (int b = 0; b < n_bins; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    pos[bi].reserve(pos_count[bi]);
    neg[bi].reserve(neg_count[bi]);
  }
  for (const Event& e : window) {
    const auto bi = bin_of(e);
    auto& channel = e.p == Polarity::kPositive ? pos[bi] : neg[bi];
    channel.push_back(CooEntry{e.y, e.x, 1.0f});
    ++counts[bi];
  }

  std::vector<SparseFrame> frames;
  frames.reserve(static_cast<std::size_t>(n_bins));
  for (int b = 0; b < n_bins; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    SparseFrame frame(geometry_.height, geometry_.width);
    frame.positive() = sparse::CooChannel::from_entries(
        geometry_.height, geometry_.width, std::move(pos[bi]));
    frame.negative() = sparse::CooChannel::from_entries(
        geometry_.height, geometry_.width, std::move(neg[bi]));
    frame.t_start = t_start + static_cast<TimeUs>(std::llround(b * bin_span));
    frame.t_end =
        t_start + static_cast<TimeUs>(std::llround((b + 1) * bin_span));
    frame.bin_index = b;
    frame.source_events = counts[bi];
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::vector<std::vector<SparseFrame>> Event2SparseFrame::convert_stream(
    const events::EventStream& stream,
    const events::FrameClock& clock) const {
  if (!(stream.geometry() == geometry_)) {
    throw std::invalid_argument("E2SF: stream geometry mismatch");
  }
  std::vector<std::vector<SparseFrame>> intervals;
  intervals.reserve(clock.interval_count());
  for (std::size_t i = 0; i + 1 < clock.timestamps.size(); ++i) {
    const TimeUs t0 = clock.timestamps[i];
    const TimeUs t1 = clock.timestamps[i + 1];
    intervals.push_back(convert(stream.slice(t0, t1), t0, t1));
  }
  return intervals;
}

std::vector<sparse::DenseTensor> dense_event_frames(
    const events::SensorGeometry& geometry, std::span<const Event> window,
    TimeUs t_start, TimeUs t_end, int n_bins) {
  Event2SparseFrame converter(geometry, E2sfConfig{n_bins});
  const auto frames = converter.convert(window, t_start, t_end);
  std::vector<sparse::DenseTensor> dense;
  dense.reserve(frames.size());
  for (const SparseFrame& f : frames) dense.push_back(f.to_dense());
  return dense;
}

namespace {

[[nodiscard]] SparseFrame frame_from_events(
    const events::SensorGeometry& geometry, std::span<const Event> window) {
  SparseFrame frame(geometry.height, geometry.width);
  std::vector<CooEntry> pos;
  std::vector<CooEntry> neg;
  for (const Event& e : window) {
    (e.p == Polarity::kPositive ? pos : neg)
        .push_back(CooEntry{e.y, e.x, 1.0f});
  }
  frame.positive() = sparse::CooChannel::from_entries(
      geometry.height, geometry.width, std::move(pos));
  frame.negative() = sparse::CooChannel::from_entries(
      geometry.height, geometry.width, std::move(neg));
  if (!window.empty()) {
    frame.t_start = window.front().t;
    frame.t_end = window.back().t + 1;
  }
  frame.source_events = static_cast<std::int64_t>(window.size());
  return frame;
}

}  // namespace

std::vector<SparseFrame> accumulate_by_count(const events::EventStream& stream,
                                             std::size_t count) {
  if (count == 0) {
    throw std::invalid_argument("accumulate_by_count: count must be > 0");
  }
  std::vector<SparseFrame> frames;
  const auto events = stream.events();
  for (std::size_t i = 0; i < events.size(); i += count) {
    const std::size_t n = std::min(count, events.size() - i);
    frames.push_back(
        frame_from_events(stream.geometry(), events.subspan(i, n)));
  }
  return frames;
}

std::vector<SparseFrame> accumulate_by_time(const events::EventStream& stream,
                                            TimeUs window_us) {
  if (window_us <= 0) {
    throw std::invalid_argument("accumulate_by_time: window must be > 0");
  }
  std::vector<SparseFrame> frames;
  if (stream.empty()) return frames;
  for (TimeUs t = stream.t_begin(); t <= stream.t_end(); t += window_us) {
    auto frame = frame_from_events(stream.geometry(),
                                   stream.slice(t, t + window_us));
    frame.t_start = t;
    frame.t_end = t + window_us;
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace evedge::core
