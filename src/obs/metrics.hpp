#pragma once

// Live metrics: atomic counters, gauges and fixed-bucket log-scale
// histograms behind a named registry, with Prometheus text-exposition
// and JSON snapshots — the mid-run view of the quantities ServeReport
// only hands back after a run. Updates are lock-free (one atomic RMW
// per observation); registration and snapshotting take the registry
// mutex, so callers cache the returned references and keep the hot path
// name-lookup-free.
//
// Histogram buckets are logarithmic with a fixed count: bucket i spans
// (min * growth^(i-1), min * growth^i], bucket 0 additionally absorbs
// everything below min and the last bucket everything above the top
// bound. percentile() answers with the upper bound of the bucket
// holding the requested rank, so it agrees with an exact reservoir
// percentile to within one bucket width (test_obs pins that contract
// against serve's LatencyReservoir).
//
// Prometheus exposition follows the text format: counters as
// `name_total`, gauges verbatim, histograms as cumulative `name_bucket`
// series with `le` labels plus `_sum`/`_count`.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace evedge::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  struct Options {
    double min = 100.0;    ///< upper bound of bucket 0
    double growth = 2.0;   ///< per-bucket bound multiplier (> 1)
    int buckets = 24;      ///< fixed bucket count (>= 2)
  };

  explicit Histogram(Options options);

  /// Lock-free: one fetch_add on the bucket, plus count/sum updates.
  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int bucket_count() const noexcept {
    return static_cast<int>(buckets_.size());
  }
  /// Upper bound of bucket i (+inf for the last).
  [[nodiscard]] double bucket_upper(int i) const noexcept;
  [[nodiscard]] std::uint64_t bucket_value(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// Upper bound of the bucket containing the q-th rank (nearest-rank
  /// over bucket counts); 0 when empty. Within one bucket width of an
  /// exact percentile by construction.
  [[nodiscard]] double percentile(double q) const noexcept;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  [[nodiscard]] int bucket_index(double v) const noexcept;

  Options options_;
  std::deque<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metric registry. References returned by counter()/gauge()/
/// histogram() are stable for the registry's lifetime (entries are
/// never removed); re-registering a name returns the existing metric.
class MetricsRegistry {
 public:
  /// The process-wide registry serving instrumentation publishes to.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, Histogram::Options options,
                       const std::string& help = "");

  /// Prometheus text exposition (HELP/TYPE + samples).
  [[nodiscard]] std::string prometheus_text() const;
  /// The same snapshot as a JSON object keyed by metric name.
  [[nodiscard]] std::string json_text() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram } kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  [[nodiscard]] Entry* find(const std::string& name);

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
};

/// Periodic snapshot thread: every `interval_ms`, runs the (optional)
/// sample hook — the place to refresh gauges from live state — then
/// writes the registry's Prometheus text (and, when a JSON path is
/// given, the JSON snapshot) via write-to-temp + rename, so a scraper
/// never reads a torn file. start()/stop() bracket the thread; the
/// destructor stops it.
class Snapshotter {
 public:
  Snapshotter(MetricsRegistry& registry, double interval_ms,
              std::string prometheus_path, std::string json_path = {});
  ~Snapshotter();
  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  void set_sample_hook(std::function<void()> hook) {
    sample_hook_ = std::move(hook);
  }
  void start();
  void stop();
  [[nodiscard]] std::size_t snapshots_written() const noexcept {
    return snapshots_.load(std::memory_order_relaxed);
  }
  /// Takes one snapshot immediately (also called per tick).
  void snapshot_now();

 private:
  MetricsRegistry& registry_;
  double interval_ms_;
  std::string prometheus_path_;
  std::string json_path_;
  std::function<void()> sample_hook_;
  std::atomic<std::size_t> snapshots_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace evedge::obs
