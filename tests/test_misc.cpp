// Coverage for auxiliary paths: CSV export, scene ground truth, error
// handling across module boundaries, Gantt rendering and configuration
// validation — the code a downstream user hits first when misusing the
// API, so the error messages and guards deserve tests of their own.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/dsfa.hpp"
#include "core/e2sf.hpp"
#include "core/inference_cost.hpp"
#include "core/pipeline.hpp"
#include "events/io.hpp"
#include "events/scene.hpp"
#include "events/event_synth.hpp"
#include "hw/profiler.hpp"
#include "mapper/nmp.hpp"
#include "nn/zoo.hpp"
#include "sched/scheduler.hpp"

namespace ec = evedge::core;
namespace ee = evedge::events;
namespace eh = evedge::hw;
namespace em = evedge::mapper;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace es = evedge::sparse;
namespace ss = evedge::sched;

// ------------------------------------------------------------------ events

TEST(MiscEvents, CsvExportHasHeaderAndAllRows) {
  ee::EventStream s(ee::SensorGeometry{8, 8});
  s.push_back({1, 2, 100, ee::Polarity::kPositive});
  s.push_back({3, 4, 200, ee::Polarity::kNegative});
  const auto path =
      std::filesystem::temp_directory_path() / "evedge_events.csv";
  ee::write_csv(s, path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y,t_us,polarity");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2,100,1");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4,200,-1");
  std::filesystem::remove(path);
}

TEST(MiscEvents, AppendRejectsPastAndGeometryMismatch) {
  ee::EventStream a(ee::SensorGeometry{8, 8});
  a.push_back({0, 0, 500, ee::Polarity::kPositive});
  ee::EventStream wrong(ee::SensorGeometry{16, 8});
  EXPECT_THROW(a.append(wrong), std::invalid_argument);
  ee::EventStream past(ee::SensorGeometry{8, 8});
  past.push_back({0, 0, 100, ee::Polarity::kPositive});
  EXPECT_THROW(a.append(past), std::invalid_argument);
  ee::EventStream future(ee::SensorGeometry{8, 8});
  future.push_back({0, 0, 900, ee::Polarity::kPositive});
  EXPECT_NO_THROW(a.append(future));
  EXPECT_EQ(a.size(), 2u);
}

TEST(MiscEvents, FrameClockRejectsNonPositivePeriod) {
  EXPECT_THROW((void)ee::FrameClock::uniform(0, 0, 3),
               std::invalid_argument);
  EXPECT_THROW((void)ee::FrameClock::uniform(0, -5, 3),
               std::invalid_argument);
}

TEST(MiscEvents, DriftingDotsGroundTruthMatchesParams) {
  ee::DriftingDotsScene scene(ee::DriftingDotsScene::Params{
      ee::SensorGeometry{24, 16}, 4, 1.0, 33.0, -7.0, 0.05, 0.9, 3});
  const auto flow = scene.ground_truth_flow(12345);
  EXPECT_FLOAT_EQ(flow.vx.front(), 33.0f);
  EXPECT_FLOAT_EQ(flow.vy.front(), -7.0f);
  EXPECT_EQ(flow.width, 24);
  EXPECT_EQ(flow.height, 16);
}

TEST(MiscEvents, SynthRejectsBadConfigs) {
  ee::SynthConfig cfg;
  cfg.blob_count = 0;
  EXPECT_THROW(ee::PoissonEventSynthesizer(
                   ee::DensityProfile::indoor_flying1(), cfg),
               std::invalid_argument);
  cfg.blob_count = 3;
  cfg.background_weight = 1.5;
  EXPECT_THROW(ee::PoissonEventSynthesizer(
                   ee::DensityProfile::indoor_flying1(), cfg),
               std::invalid_argument);
}

// ---------------------------------------------------------------- sparse/nn

TEST(MiscSparse, FromDenseRejectsWrongChannelCount) {
  es::DenseTensor bad(es::TensorShape{1, 3, 4, 4});
  EXPECT_THROW((void)es::SparseFrame::from_dense(bad),
               std::invalid_argument);
}

TEST(MiscNn, ZooRejectsDegenerateConfigs) {
  en::ZooConfig tiny;
  tiny.height = 8;
  tiny.width = 8;
  EXPECT_THROW((void)en::build_spikeflownet(tiny), std::invalid_argument);
  en::ZooConfig narrow = en::ZooConfig::test_scale();
  narrow.base_channels = 1;
  EXPECT_THROW((void)en::build_halsie(narrow), std::invalid_argument);
  en::ZooConfig nobins = en::ZooConfig::test_scale();
  nobins.n_bins = 0;
  EXPECT_THROW((void)en::build_dotie(nobins), std::invalid_argument);
}

TEST(MiscNn, WeightsAccessorGuardsHelperNodes) {
  const auto spec =
      en::build_network(en::NetworkId::kSpikeFlowNet,
                        en::ZooConfig::test_scale());
  en::FunctionalNetwork net(spec, 7);
  // Node 0 is the input: no weights.
  EXPECT_THROW((void)net.weights(0), std::invalid_argument);
  EXPECT_THROW((void)net.weights(-1), std::invalid_argument);
  EXPECT_THROW((void)net.weights(10'000), std::invalid_argument);
}

// ------------------------------------------------------------------- sched

TEST(MiscSched, GanttMarksTasksAndTransfers) {
  const auto platform = eh::xavier_agx();
  // SpikeFlowNet has many mappable nodes, so moving the first one to the
  // CPU creates a real cross-PE edge (DOTIE's single layer would not).
  std::vector<en::NetworkSpec> specs{en::build_network(
      en::NetworkId::kSpikeFlowNet, en::ZooConfig::test_scale())};
  const auto profiles = eh::profile_tasks(specs, platform);
  auto candidate = ss::uniform_candidate(
      specs, platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  // Force one cross-PE edge so a '~' transfer shows up.
  for (auto& node : candidate.tasks[0].nodes) {
    if (node.pe >= 0) {
      node.pe = platform.first_pe(eh::PeKind::kCpu);
      break;
    }
  }
  const auto result = ss::schedule(specs, profiles, candidate, platform);
  const auto gantt = ss::format_gantt(result, platform, 40);
  EXPECT_NE(gantt.find('A'), std::string::npos);   // task 0 executes
  EXPECT_NE(gantt.find('~'), std::string::npos);   // transfer rendered
  EXPECT_NE(gantt.find("unified-mem"), std::string::npos);
}

TEST(MiscSched, ScheduleRejectsMismatchedInputs) {
  const auto platform = eh::xavier_agx();
  std::vector<en::NetworkSpec> specs{en::build_network(
      en::NetworkId::kDotie, en::ZooConfig::test_scale())};
  const auto profiles = eh::profile_tasks(specs, platform);
  const auto candidate = ss::uniform_candidate(
      specs, platform.first_pe(eh::PeKind::kGpu), eq::Precision::kFp32);
  std::vector<en::NetworkSpec> two = specs;
  two.push_back(specs[0]);
  EXPECT_THROW((void)ss::schedule(two, profiles, candidate, platform),
               std::invalid_argument);
}

// ------------------------------------------------------------------ mapper

TEST(MiscMapper, ConstructorValidatesConfig) {
  const auto platform = eh::xavier_agx();
  std::vector<en::NetworkSpec> specs{en::build_network(
      en::NetworkId::kDotie, en::ZooConfig::test_scale())};
  const auto profiles = eh::profile_tasks(specs, platform);
  const auto accuracy = [](int, const ss::TaskMapping&) { return 0.0; };

  em::NmpConfig bad_pop;
  bad_pop.population = 1;
  EXPECT_THROW(em::NetworkMapper(specs, profiles, platform, accuracy,
                                 bad_pop),
               std::invalid_argument);
  em::NmpConfig bad_gen;
  bad_gen.generations = 0;
  EXPECT_THROW(em::NetworkMapper(specs, profiles, platform, accuracy,
                                 bad_gen),
               std::invalid_argument);
  EXPECT_THROW(em::NetworkMapper(specs, profiles, platform, nullptr,
                                 em::NmpConfig{}),
               std::invalid_argument);
  EXPECT_THROW(em::NetworkMapper({}, {}, platform, accuracy,
                                 em::NmpConfig{}),
               std::invalid_argument);
}

// -------------------------------------------------------------------- core

TEST(MiscCore, E2sfGuards) {
  const ee::SensorGeometry g{8, 8};
  EXPECT_THROW(ec::Event2SparseFrame(g, ec::E2sfConfig{0}),
               std::invalid_argument);
  const ec::Event2SparseFrame e2sf(g, ec::E2sfConfig{2});
  EXPECT_THROW((void)e2sf.convert({}, 100, 100), std::invalid_argument);
  ee::EventStream wrong(ee::SensorGeometry{16, 16});
  wrong.push_back({0, 0, 0, ee::Polarity::kPositive});
  EXPECT_THROW((void)e2sf.convert_stream(
                   wrong, ee::FrameClock::uniform(0, 100, 2)),
               std::invalid_argument);
}

TEST(MiscCore, AccumulationGuards) {
  ee::EventStream s(ee::SensorGeometry{8, 8});
  s.push_back({0, 0, 0, ee::Polarity::kPositive});
  EXPECT_THROW((void)ec::accumulate_by_count(s, 0), std::invalid_argument);
  EXPECT_THROW((void)ec::accumulate_by_time(s, 0), std::invalid_argument);
}

TEST(MiscCore, DsfaConfigValidation) {
  ec::DsfaConfig cfg;
  cfg.event_buffer_size = 0;
  EXPECT_THROW(ec::DynamicSparseFrameAggregator{cfg},
               std::invalid_argument);
  cfg = {};
  cfg.merge_bucket_capacity = 0;
  EXPECT_THROW(ec::DynamicSparseFrameAggregator{cfg},
               std::invalid_argument);
  cfg = {};
  cfg.max_time_delay_us = -1.0;
  EXPECT_THROW(ec::DynamicSparseFrameAggregator{cfg},
               std::invalid_argument);
  cfg = {};
  cfg.inference_queue_capacity = 0;
  EXPECT_THROW(ec::DynamicSparseFrameAggregator{cfg},
               std::invalid_argument);
}

TEST(MiscCore, PipelineGuards) {
  const auto platform = eh::xavier_agx();
  const auto spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto densities = ec::measure_activation_densities(spec, 7);
  const auto mapping =
      ss::uniform_candidate({spec}, platform.first_pe(eh::PeKind::kGpu),
                            eq::Precision::kFp32)
          .tasks.front();
  ee::EventStream empty(ee::SensorGeometry{44, 32});
  EXPECT_THROW((void)ec::simulate_pipeline(empty, spec, mapping, platform,
                                           densities, ec::PipelineConfig{}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)ec::simulate_frame_pipeline({}, spec, mapping, platform,
                                        densities, ec::PipelineConfig{}),
      std::invalid_argument);
  ec::PipelineConfig bad_rate;
  bad_rate.frame_rate_hz = 0.0;
  ee::SynthConfig synth;
  synth.geometry = ee::SensorGeometry{44, 32};
  const auto stream = ee::PoissonEventSynthesizer(
                          ee::DensityProfile::indoor_flying1(), synth)
                          .generate(0, 100'000);
  EXPECT_THROW((void)ec::simulate_pipeline(stream, spec, mapping, platform,
                                           densities, bad_rate),
               std::invalid_argument);
}

TEST(MiscCore, EstimateInferenceGuards) {
  const auto platform = eh::xavier_agx();
  const auto spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto densities = ec::measure_activation_densities(spec, 7);
  const auto mapping =
      ss::uniform_candidate({spec}, platform.first_pe(eh::PeKind::kGpu),
                            eq::Precision::kFp32)
          .tasks.front();
  EXPECT_THROW((void)ec::estimate_inference(spec, mapping, platform,
                                            densities, 1.5),
               std::invalid_argument);
  ec::InferenceCostOptions bad_batch;
  bad_batch.batch = 0;
  EXPECT_THROW((void)ec::estimate_inference(spec, mapping, platform,
                                            densities, 0.1, bad_batch),
               std::invalid_argument);
  ec::ActivationDensityProfile wrong;
  wrong.density.assign(1, 0.5);
  EXPECT_THROW(
      (void)ec::estimate_inference(spec, mapping, platform, wrong, 0.1),
      std::invalid_argument);
}

// --------------------------------------------------- static framing paths

TEST(MiscCore, StaticFramingFeedsPipeline) {
  const auto platform = eh::xavier_agx();
  const auto spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto densities = ec::measure_activation_densities(spec, 7);
  const auto mapping =
      ss::uniform_candidate({spec}, platform.first_pe(eh::PeKind::kGpu),
                            eq::Precision::kFp32)
          .tasks.front();
  ee::SynthConfig synth;
  synth.geometry = ee::SensorGeometry{44, 32};
  synth.seed = 21;
  const auto stream = ee::PoissonEventSynthesizer(
                          ee::DensityProfile::indoor_flying1(), synth)
                          .generate(0, 500'000);
  const auto frames = ec::accumulate_by_time(stream, 25'000);
  ec::PipelineConfig cfg;
  cfg.use_dsfa = false;
  const auto stats = ec::simulate_frame_pipeline(frames, spec, mapping,
                                                 platform, densities, cfg);
  EXPECT_EQ(stats.frames_generated, frames.size());
  EXPECT_EQ(stats.source_frames_completed + stats.frames_dropped,
            frames.size());
}
