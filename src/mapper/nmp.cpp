#include "mapper/nmp.hpp"

#include "mapper/baselines.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace evedge::mapper {

namespace {

struct Scored {
  MappingCandidate candidate;
  double fitness = std::numeric_limits<double>::infinity();
};

}  // namespace

std::uint64_t candidate_hash(const MappingCandidate& candidate) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;  // FNV prime
  };
  for (const TaskMapping& task : candidate.tasks) {
    for (const sched::NodeAssignment& a : task.nodes) {
      mix(static_cast<std::uint64_t>(a.pe + 1));
      mix(static_cast<std::uint64_t>(a.precision));
    }
  }
  return h;
}

NetworkMapper::NetworkMapper(std::vector<nn::NetworkSpec> specs,
                             std::vector<hw::TaskProfile> profiles,
                             hw::Platform platform, AccuracyFn accuracy,
                             NmpConfig config)
    : specs_(std::move(specs)),
      profiles_(std::move(profiles)),
      platform_(std::move(platform)),
      accuracy_(std::move(accuracy)),
      config_(config) {
  if (specs_.empty() || specs_.size() != profiles_.size()) {
    throw std::invalid_argument("mapper needs matching specs/profiles");
  }
  if (config_.population < 2) {
    throw std::invalid_argument("population must be >= 2");
  }
  if (config_.generations < 1) {
    throw std::invalid_argument("generations must be >= 1");
  }
  if (!accuracy_) {
    throw std::invalid_argument("accuracy oracle must be set");
  }
  platform_.validate();
}

std::vector<sched::NodeAssignment> NetworkMapper::choices_for(
    int task, int node_id) const {
  const hw::NodeProfile& np =
      profiles_[static_cast<std::size_t>(task)].node(node_id);
  std::vector<sched::NodeAssignment> choices;
  if (!np.mappable) return choices;
  for (const hw::ProcessingElement& pe : platform_.pes) {
    for (const quant::Precision p : quant::kAllPrecisions) {
      if (!config_.allow_reduced_precision &&
          p == quant::Precision::kInt8) {
        continue;
      }
      if (np.supported(pe.id, p)) {
        choices.push_back(sched::NodeAssignment{pe.id, p});
      }
    }
  }
  if (choices.empty()) {
    throw std::logic_error("node has no valid (PE, precision) choice");
  }
  return choices;
}

MappingCandidate NetworkMapper::random_candidate(std::uint64_t seed) const {
  std::mt19937_64 rng(seed);
  MappingCandidate candidate;
  candidate.tasks.resize(specs_.size());
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    TaskMapping& mapping = candidate.tasks[t];
    mapping.nodes.resize(specs_[t].graph.size());
    for (const nn::LayerNode& node : specs_[t].graph.nodes()) {
      const auto choices = choices_for(static_cast<int>(t), node.id);
      if (choices.empty()) continue;
      std::uniform_int_distribution<std::size_t> pick(0, choices.size() - 1);
      mapping.nodes[static_cast<std::size_t>(node.id)] = choices[pick(rng)];
    }
  }
  return candidate;
}

MappingCandidate NetworkMapper::greedy_candidate(
    bool full_precision_only) const {
  MappingCandidate candidate;
  candidate.tasks.resize(specs_.size());
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    TaskMapping& mapping = candidate.tasks[t];
    mapping.nodes.resize(specs_[t].graph.size());
    for (const nn::LayerNode& node : specs_[t].graph.nodes()) {
      const hw::NodeProfile& np = profiles_[t].node(node.id);
      if (!np.mappable) continue;
      sched::NodeAssignment best{};
      double best_time = std::numeric_limits<double>::infinity();
      for (const sched::NodeAssignment& a :
           choices_for(static_cast<int>(t), node.id)) {
        if (full_precision_only && a.precision == quant::Precision::kInt8) {
          continue;
        }
        const double time = np.time(a.pe, a.precision);
        if (time < best_time) {
          best_time = time;
          best = a;
        }
      }
      mapping.nodes[static_cast<std::size_t>(node.id)] = best;
    }
  }
  return candidate;
}

double NetworkMapper::fitness(const MappingCandidate& candidate,
                              sched::ScheduleResult* schedule_out,
                              std::vector<double>* degradation_out) const {
  const sched::ScheduleResult result =
      sched::schedule(specs_, profiles_, candidate, platform_);
  double penalty = 0.0;
  std::vector<double> degradation(specs_.size(), 0.0);
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    degradation[t] =
        accuracy_(static_cast<int>(t), candidate.tasks[t]);
    if (degradation[t] > config_.accuracy_threshold) {
      penalty += (degradation[t] - config_.accuracy_threshold) /
                 std::max(config_.accuracy_threshold, 1e-9);
    }
  }
  if (schedule_out != nullptr) *schedule_out = result;
  if (degradation_out != nullptr) *degradation_out = std::move(degradation);
  double objective = 0.0;
  switch (config_.objective) {
    case Objective::kLatency:
      objective = result.max_task_latency_us;
      break;
    case Objective::kEnergy:
      objective = result.energy_mj;
      break;
    case Objective::kEnergyDelayProduct:
      objective = result.energy_mj * result.max_task_latency_us / 1000.0;
      break;
  }
  return objective * (1.0 + config_.constraint_penalty * penalty);
}

void NetworkMapper::mutate(MappingCandidate& candidate,
                           std::mt19937_64& rng) const {
  for (std::size_t t = 0; t < candidate.tasks.size(); ++t) {
    // Collect mappable node ids once per task.
    std::vector<int> mappable;
    for (const nn::LayerNode& node : specs_[t].graph.nodes()) {
      if (profiles_[t].node(node.id).mappable) mappable.push_back(node.id);
    }
    if (mappable.empty()) continue;
    std::uniform_int_distribution<std::size_t> pick_node(0,
                                                         mappable.size() - 1);
    for (int m = 0; m < config_.mutation_layers; ++m) {
      const int node_id = mappable[pick_node(rng)];
      const auto choices = choices_for(static_cast<int>(t), node_id);
      std::uniform_int_distribution<std::size_t> pick(0, choices.size() - 1);
      candidate.tasks[t].nodes[static_cast<std::size_t>(node_id)] =
          choices[pick(rng)];
    }
  }
}

NmpResult NetworkMapper::run() {
  std::mt19937_64 rng(config_.seed);
  NmpResult result;

  // Fitness cache (paper §4.3.1: "the fitness scores are cached for each
  // new candidate and reused if the same candidate emerges").
  std::unordered_map<std::uint64_t, double> cache;
  const auto evaluate = [&](const MappingCandidate& c) {
    const std::uint64_t key = candidate_hash(c);
    const auto it = cache.find(key);
    if (it != cache.end()) {
      ++result.cache_hits;
      return it->second;
    }
    const double f = fitness(c);
    ++result.fitness_evaluations;
    cache.emplace(key, f);
    return f;
  };

  // --- Initial population: optional greedy seeds + random candidates.
  std::vector<Scored> population;
  population.reserve(static_cast<std::size_t>(config_.population));
  if (config_.seed_greedy) {
    Scored greedy;
    greedy.candidate = greedy_candidate(false);
    greedy.fitness = evaluate(greedy.candidate);
    population.push_back(std::move(greedy));
    if (config_.allow_reduced_precision) {
      Scored safe;  // constraint-safe full-precision variant
      safe.candidate = greedy_candidate(true);
      safe.fitness = evaluate(safe.candidate);
      population.push_back(std::move(safe));
    }
    // Round-robin baselines as seeds: the search must never lose to a
    // candidate it could trivially have started from.
    for (auto maker : {rr_network_candidate, rr_layer_candidate}) {
      if (population.size() >=
          static_cast<std::size_t>(config_.population)) {
        break;
      }
      Scored rr;
      rr.candidate = maker(specs_, profiles_, platform_);
      if (!config_.allow_reduced_precision) {
        // Strip any INT8 the baseline picked (widest precision never
        // selects INT8, so this is a no-op today; kept for safety).
        for (auto& task : rr.candidate.tasks) {
          for (auto& node : task.nodes) {
            if (node.pe >= 0 &&
                node.precision == quant::Precision::kInt8) {
              node.precision = quant::Precision::kFp16;
            }
          }
        }
      }
      rr.fitness = evaluate(rr.candidate);
      // Also seed an INT8-where-possible variant of the same placement:
      // a common strong point the crossover can splice from.
      Scored rr8;
      rr8.candidate = rr.candidate;
      if (config_.allow_reduced_precision) {
        for (std::size_t t = 0; t < rr8.candidate.tasks.size(); ++t) {
          auto& task = rr8.candidate.tasks[t];
          for (std::size_t n = 0; n < task.nodes.size(); ++n) {
            auto& node = task.nodes[n];
            if (node.pe >= 0 &&
                profiles_[t].node(static_cast<int>(n))
                    .supported(node.pe, quant::Precision::kInt8)) {
              node.precision = quant::Precision::kInt8;
            }
          }
        }
      }
      population.push_back(std::move(rr));
      if (config_.allow_reduced_precision &&
          population.size() <
              static_cast<std::size_t>(config_.population)) {
        rr8.fitness = evaluate(rr8.candidate);
        population.push_back(std::move(rr8));
      }
    }
  }
  while (population.size() <
         static_cast<std::size_t>(config_.population)) {
    Scored s;
    s.candidate = random_candidate(rng());
    s.fitness = evaluate(s.candidate);
    population.push_back(std::move(s));
  }

  const auto by_fitness = [](const Scored& a, const Scored& b) {
    return a.fitness < b.fitness;
  };

  const int elite_count = std::max(
      1, static_cast<int>(config_.elite_fraction * config_.population));

  for (int gen = 0; gen < config_.generations; ++gen) {
    std::sort(population.begin(), population.end(), by_fitness);

    GenerationRecord record;
    record.generation = gen;
    record.best_fitness = population.front().fitness;
    double mean = 0.0;
    for (const Scored& s : population) mean += s.fitness;
    record.mean_fitness = mean / static_cast<double>(population.size());
    {
      sched::ScheduleResult sr;
      std::vector<double> deg;
      (void)fitness(population.front().candidate, &sr, &deg);
      record.best_latency_us = sr.max_task_latency_us;
      for (std::size_t t = 0; t < deg.size(); ++t) {
        record.best_accuracy_violation =
            std::max(record.best_accuracy_violation,
                     deg[t] - config_.accuracy_threshold);
      }
    }
    result.history.push_back(record);

    // --- Next generation: elites survive; children come from neighbor-
    // pair crossover among the fittest half (paper: "new children are
    // produced by the fittest candidates"; one of each neighboring pair
    // is chosen as the child with equal likelihood), then mutated.
    std::vector<Scored> next;
    next.reserve(population.size());
    for (int e = 0; e < elite_count; ++e) {
      next.push_back(population[static_cast<std::size_t>(e)]);
    }
    const std::size_t parent_pool =
        std::max<std::size_t>(2, population.size() / 2);
    std::uniform_int_distribution<int> coin(0, 1);
    std::size_t pair = 0;
    while (next.size() < population.size()) {
      const std::size_t a = pair % parent_pool;
      const std::size_t b = (pair + 1) % parent_pool;
      ++pair;
      Scored child;
      child.candidate = coin(rng) == 0 ? population[a].candidate
                                       : population[b].candidate;
      mutate(child.candidate, rng);
      child.fitness = evaluate(child.candidate);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  std::sort(population.begin(), population.end(), by_fitness);
  result.best = population.front().candidate;
  (void)fitness(result.best, &result.best_schedule,
                &result.task_degradation);
  return result;
}

}  // namespace evedge::mapper
