#pragma once

// WireStreamIngress: the network twin of StreamIngress. Instead of
// walking an in-memory EventStream it serves a wire session — accepts
// a transport (and re-accepts after disconnects), runs the hardened
// WireReceiver over it, and feeds the accepted, exactly-once, in-order
// event flow through the SAME E2SF + DSFA pipeline into the shared
// FrameQueue.
//
// Grid parity: the hello packet carries the stream's full 64-bit epoch
// and end timestamp, from which this ingress rebuilds the exact
// FrameClock::spanning grid the offline path uses — so every frame
// decoded from an unaffected packet is bitwise identical to
// StreamIngress::collect_frames / run_serial, (stream, seq) keys
// aligned. Intervals are converted as soon as the event flow crosses
// their right edge (events arrive time-ordered, so a later event
// proves the interval complete); the tail flushes at end-of-stream.
//
// Hardening: rejected packets (truncated / CRC-failed / malformed) are
// quarantined into the stream's packet lanes by the receiver — never
// an ingress-thread death; stalled peers trip the receiver's stall
// timeout and burn one session loss; reconnects resume from the last
// cumulative ack with zero acked frames lost. Malformed FRAMES (after
// decode) still go through the frame_fault_of quarantine gate exactly
// like in-process ingress.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/stream_ingress.hpp"
#include "wire/session.hpp"
#include "wire/transport.hpp"

namespace evedge::serve {

/// Supplies the receiver side of successive connections for one wire
/// stream: the first call yields the initial connection, later calls
/// the reconnects. nullptr = nothing within the timeout. Called only
/// from the ingress thread.
using TransportAcceptor = std::function<std::unique_ptr<wire::Transport>(
    std::chrono::milliseconds)>;

struct WireIngressConfig {
  wire::WireReceiverConfig receiver{};
  /// Patience per acceptor call.
  std::chrono::milliseconds accept_timeout{1000};
  /// Consecutive lost sessions (accept timeouts, dead or stalled
  /// peers) tolerated before the stream is marked failed.
  int max_session_losses = 10;
};

class WireStreamIngress final : public IngressBase {
 public:
  WireStreamIngress(int stream_id, IngressConfig config,
                    WireIngressConfig wire_config, FrameQueue& queue,
                    TransportAcceptor acceptor);

  /// Attaches the fault journal (nullptr detaches); rejected packets
  /// and frame quarantines are appended. Must outlive the ingress.
  void attach_journal(FaultJournal* journal) noexcept {
    journal_ = journal;
  }

  /// Attaches this stream's labeled enqueue counter (nullptr detaches);
  /// bumped once per dispatched frame, mirroring stats().enqueued.
  /// Must outlive the ingress.
  void attach_dispatch_counter(obs::Counter* counter) noexcept {
    dispatch_counter_ = counter;
  }

  void run() override;
  void mark_failed(std::string reason) override;
  [[nodiscard]] const StreamServeStats& stats() const noexcept override {
    return stats_;
  }
  [[nodiscard]] const std::vector<QuarantinedFrame>& quarantined()
      const noexcept override {
    return quarantined_;
  }

  /// Raw receiver-side session counters, valid after run().
  [[nodiscard]] const wire::WireRecvStats& wire_stats() const noexcept {
    return wire_stats_;
  }
  /// The stream header announced by the peer (valid once run() saw a
  /// hello).
  [[nodiscard]] const wire::StreamHeader& stream_header() const noexcept {
    return header_;
  }

 private:
  void on_hello(const wire::StreamHeader& header);
  void on_events(std::span<const events::Event> batch);
  /// Converts every grid interval whose right edge the event flow has
  /// crossed (all of them when `flush`), pushing frames through DSFA
  /// and dispatching merged output after each interval — the exact
  /// cadence of the offline ingest.
  void process_intervals(bool flush);
  /// Admission gate + enqueue, mirroring StreamIngress: returns false
  /// when the queue closed under us (sets abort_).
  bool dispatch(sparse::SparseFrame frame);
  bool drain_dsfa();

  int stream_id_;
  IngressConfig config_;
  WireIngressConfig wire_config_;
  FrameQueue& queue_;
  TransportAcceptor acceptor_;
  FaultJournal* journal_ = nullptr;
  obs::Counter* dispatch_counter_ = nullptr;

  StreamServeStats stats_;
  std::vector<QuarantinedFrame> quarantined_;
  wire::WireRecvStats wire_stats_;

  // Streaming pipeline state (built on hello).
  wire::StreamHeader header_{};
  bool have_grid_ = false;
  std::optional<core::Event2SparseFrame> e2sf_;
  std::optional<core::DynamicSparseFrameAggregator> dsfa_;
  events::FrameClock clock_;
  std::size_t next_interval_ = 0;
  std::vector<events::Event> buffered_;
  std::int64_t seq_ = 0;
  double density_sum_ = 0.0;
  bool abort_ = false;
  wire::Transport* current_ = nullptr;
};

}  // namespace evedge::serve
