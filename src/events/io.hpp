#pragma once

// Minimal binary + CSV persistence for event streams. The binary format is
// a fixed 24-byte header (magic, version, geometry, count) followed by
// packed little-endian event records; CSV is for plotting tool interop.

#include <filesystem>

#include "events/event_stream.hpp"

namespace evedge::events {

/// Writes `stream` to `path` in the EVED binary format (overwrites).
void write_binary(const EventStream& stream,
                  const std::filesystem::path& path);

/// Reads an EVED binary file; throws std::runtime_error on malformed input.
[[nodiscard]] EventStream read_binary(const std::filesystem::path& path);

/// Writes "x,y,t_us,polarity" rows (with header) for external plotting.
void write_csv(const EventStream& stream, const std::filesystem::path& path);

}  // namespace evedge::events
