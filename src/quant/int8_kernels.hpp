#pragma once

// Real INT8 execution kernels: the compute backend the fake-quantization
// module (quantizer.hpp) only models. Weights are quantized symmetrically
// per output channel; activations are quantized per tensor with a
// calibrated static scale (calibrate.hpp); arithmetic accumulates in
// int32 and requantizes to float:
//
//   out[oc][p] = bias[oc] + (sum_r qw[oc][r] * qx[r][p]) * s_x * s_w[oc]
//
// Precision contract:
//  - quantization rounding is Int8Scale::quantize (round half away from
//    zero, saturate to +-127, NaN -> 0) — identical to the fake-quant
//    grid, so an int8 kernel followed by dequantization matches the
//    float simulation of the same quantization decisions up to float
//    accumulation order (integer accumulation is exact).
//  - quantized values live in the int8 grid but are STORED widened to
//    int16 in the compute layouts ([oc][patch] rows for the dense dot
//    kernel, [tap][oc] rows for the sparse reduction) so the inner loops
//    vectorize to widening multiply-adds on baseline SIMD; the canonical
//    1-byte-per-weight tensor is kept alongside for memory accounting.
//  - int32 accumulation is exact while patch_size * 127^2 < 2^31
//    (patch < 133152 taps); quantize_conv_weights rejects larger layers.
//
// Dense path: transposed int16 im2col ([pixels][patch], quantized once
// per input element, not per column element) + an output-channel-blocked
// dot kernel. Sparse path: the gather front half of sparse_ops
// (build_gather_taps) with an int8 tap reduction against the packed
// [tap][oc] rows. Scratch comes from sparse::Workspace (qin/qcol/qtaps/
// iacc slots); without a workspace every call allocates locally.

#include <cstdint>
#include <span>
#include <vector>

#include "quant/precision.hpp"
#include "quant/quantizer.hpp"
#include "sparse/coo.hpp"
#include "sparse/sparse_ops.hpp"
#include "sparse/tensor.hpp"
#include "sparse/workspace.hpp"

namespace evedge::quant {

using sparse::Conv2dSpec;
using sparse::ConvWork;
using sparse::CooChannel;
using sparse::DenseTensor;
using sparse::Workspace;

/// Weight-scale granularity. Per-channel is the engine default (finer
/// grids, TensorRT-style); per-tensor reproduces fake_quantize's single
/// grid exactly (every channel shares one scale).
enum class WeightGranularity : std::uint8_t { kPerChannel, kPerTensor };

/// One layer's quantized weights, prepared once and shared by every
/// inference (and every sample of a batched call).
struct Int8ConvWeights {
  Conv2dSpec spec{};                 ///< conv geometry (FC: k=1, pad=0)
  std::size_t patch = 0;             ///< Cin * k * k taps per channel
  /// Row stride of `wide`: patch rounded up to a multiple of 8 and
  /// zero-padded, so the dot kernel's fixed-trip inner loops have no
  /// scalar tail (padding lanes contribute exact zeros).
  std::size_t padded_patch = 0;
  std::vector<std::int8_t> q;        ///< canonical int8, [oc][patch]
  std::vector<std::int16_t> wide;    ///< widened, [oc][padded_patch]
  std::vector<std::int16_t> packed;  ///< widened, [tap offset][oc]
  std::vector<float> scale;          ///< per-output-channel dequant scale
  /// Float weights rounded to the same per-channel grids: the arithmetic
  /// of the fake-quant float reference for this layer (and the shape
  /// carrier for sparse-kernel validation).
  DenseTensor fake;
};

/// Quantizes [Cout, Cin, k, k] conv weights (or [out, in, 1, 1] FC
/// weights with a matching spec) symmetrically. Throws when the tensor
/// does not match `spec` or when the patch is too large for exact int32
/// accumulation.
[[nodiscard]] Int8ConvWeights quantize_conv_weights(
    const DenseTensor& weights, const Conv2dSpec& spec,
    WeightGranularity granularity = WeightGranularity::kPerChannel);

/// Fake-quantizes `input` with `scale` into `out` (the float-reference
/// twin of the kernels' activation quantization; out may alias input).
void quantize_activations_reference(const DenseTensor& input, Int8Scale scale,
                                    DenseTensor& out);

/// Dense INT8 convolution over [N, Cin, H, W] input: quantize ->
/// transposed int16 im2col -> oc-blocked dot GEMM -> float requantize.
/// Numerically: bias[oc] + exact-int32 conv of the quantized operands,
/// dequantized with s_x * s_w[oc].
void int8_conv2d_into(const DenseTensor& input, const Int8ConvWeights& weights,
                      std::span<const float> bias, Int8Scale input_scale,
                      DenseTensor& out, Workspace* workspace = nullptr);

[[nodiscard]] DenseTensor int8_conv2d(const DenseTensor& input,
                                      const Int8ConvWeights& weights,
                                      std::span<const float> bias,
                                      Int8Scale input_scale,
                                      Workspace* workspace = nullptr);

/// INT8 transposed convolution (decoder stages): quantized scatter into
/// int32 planes, then float requantization.
void int8_transposed_conv2d_into(const DenseTensor& input,
                                 const Int8ConvWeights& weights,
                                 std::span<const float> bias,
                                 Int8Scale input_scale, DenseTensor& out,
                                 Workspace* workspace = nullptr);

[[nodiscard]] DenseTensor int8_transposed_conv2d(
    const DenseTensor& input, const Int8ConvWeights& weights,
    std::span<const float> bias, Int8Scale input_scale,
    Workspace* workspace = nullptr);

/// INT8 fully connected layer (weights prepared with spec
/// {in_features, out_features, 1, 1, 0}).
[[nodiscard]] DenseTensor int8_fully_connected(const DenseTensor& input,
                                               const Int8ConvWeights& weights,
                                               std::span<const float> bias,
                                               Int8Scale input_scale,
                                               Workspace* workspace = nullptr);

/// INT8 submanifold sparse convolution: the gather front half of
/// sparse_ops with quantized tap values reduced against the packed
/// [tap][oc] int8 rows. At active sites the dequantized result is
/// bitwise identical to int8_conv2d's (both compute the same exact
/// integer sum and the same float requantization). `window`, when
/// non-null, restricts the output to that row window (tiled chain
/// walker); the int32 accumulation is exact, so windowed results equal
/// full-plane results bitwise at every window site.
[[nodiscard]] std::vector<CooChannel> int8_submanifold_conv2d(
    std::span<const CooChannel> input, const Int8ConvWeights& weights,
    std::span<const float> bias, Int8Scale input_scale,
    ConvWork* work = nullptr, Workspace* workspace = nullptr,
    const sparse::RowWindow* window = nullptr);

/// INT8 CSR-output strided sparse convolution (chains densify-free like
/// sparse_conv2d_csr; bias lands at active sites only).
[[nodiscard]] std::vector<CooChannel> int8_sparse_conv2d_csr(
    std::span<const CooChannel> input, const Int8ConvWeights& weights,
    std::span<const float> bias, Int8Scale input_scale,
    ConvWork* work = nullptr, Workspace* workspace = nullptr,
    const sparse::RowWindow* window = nullptr);

// --- Engine precision plan ------------------------------------------------
// FunctionalNetwork consumes a prepared QuantPlan (see calibrate.hpp for
// the builder): per-node input scales + quantized weights, snapshotted
// from the network's weights at build time. `simulate` selects the
// float-reference twin (identical quantization decisions, float
// arithmetic) used to validate the real kernels.

/// One node's prepared int8 execution state.
struct NodeQuantPlan {
  int node_id = -1;
  Int8Scale input_scale{};
  Int8ConvWeights weights;
};

/// A per-layer precision assignment prepared for execution. Nodes absent
/// from `nodes` run FP32.
struct QuantPlan {
  std::vector<NodeQuantPlan> nodes;
  /// Run the float fake-quant twin instead of the int8 kernels.
  bool simulate = false;
};

}  // namespace evedge::quant
