// Figure 8 reproduction: single-task latency speedup over the all-GPU
// dense baseline for every Table 1 network, applying the optimizations
// cumulatively — +E2SF, +E2SF+DSFA, full Ev-Edge (+NMP) — plus the
// energy-efficiency ratio of the full configuration.
//
// Paper bands: 1.28x-2.05x latency, 1.23x-2.15x energy; SNN-heavy
// networks gain the most, and DSFA contributes little for the
// segmentation network (HALSIE) whose pixel-accuracy requirements limit
// merge aggressiveness.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/batch_executor.hpp"
#include "core/pipeline.hpp"
#include "core/runtime.hpp"
#include "events/density_profile.hpp"

namespace eb = evedge::bench;
namespace ec = evedge::core;
namespace ee = evedge::events;
namespace en = evedge::nn;

namespace {

/// Per-task DSFA tuning (paper: "both MtTh and MdTh needs to be tuned
/// for each task individually"). Segmentation runs conservative merging.
ec::DsfaConfig dsfa_for(en::TaskKind task) {
  ec::DsfaConfig cfg;
  switch (task) {
    case en::TaskKind::kSegmentation:
      cfg.merge_bucket_capacity = 2;
      cfg.max_time_delay_us = 8'000.0;
      cfg.max_density_change = 0.25;
      break;
    case en::TaskKind::kOpticalFlow:
      cfg.merge_bucket_capacity = 4;
      cfg.max_time_delay_us = 40'000.0;
      cfg.max_density_change = 0.75;
      break;
    case en::TaskKind::kDepth:
    case en::TaskKind::kTracking:
      cfg.merge_bucket_capacity = 2;
      cfg.max_time_delay_us = 25'000.0;
      cfg.max_density_change = 1.0;
      break;
  }
  return cfg;
}

}  // namespace

int main() {
  eb::print_header(
      "Figure 8: single-task speedup and energy gain vs all-GPU dense "
      "baseline (indoor_flying-like stream)");

  std::printf("%-20s %-9s %-9s %-9s %-9s %-10s %-8s %-9s\n", "network",
              "+E2SF", "+DSFA", "EvEdge", "energy", "merge", "fbatch",
              "ms/batch");
  eb::print_rule(88);

  const auto stream = eb::make_davis_stream(
      ee::DensityProfile::indoor_flying2(), 4'000'000, 21);

  double min_speed = 1e9;
  double max_speed = 0.0;
  for (const auto id : en::table1_networks()) {
    ec::EvEdgeOptions options;
    options.accuracy_scale = en::ZooConfig::test_scale();
    options.nmp.population = 24;
    options.nmp.generations = 24;
    options.nmp.accuracy_threshold = 0.08;
    options.nmp.seed = 3;
    options.dsfa = dsfa_for(
        en::build_network(id, en::ZooConfig::test_scale()).task);
    const ec::EvEdgeRuntime runtime(id, evedge::hw::xavier_agx(), options);

    const auto& spec = runtime.spec();
    const auto& densities = runtime.activation_densities();
    const auto& platform = runtime.platform();
    const auto gpu_mapping = evedge::sched::uniform_candidate(
        {spec}, platform.first_pe(evedge::hw::PeKind::kGpu),
        evedge::quant::Precision::kFp32).tasks.front();

    // Each network runs at the window rate its E2SF-optimized deployment
    // roughly sustains (util ~1.05 at typical density): the regime the
    // paper's backlog observation implies — the dense baseline is then
    // over capacity, and bursts push even the sparse runtime past it, so
    // DSFA merges adaptively.
    ec::InferenceCostOptions e2sf_opts;
    e2sf_opts.use_sparse_routes = true;
    const double e2sf_service_us =
        ec::estimate_inference(spec, gpu_mapping, platform, densities, 0.02,
                               e2sf_opts)
            .latency_us;
    const double frame_rate_hz = std::min(
        45.0, 1e6 / (e2sf_service_us *
                     static_cast<double>(spec.n_bins)) * 0.95);

    ec::PipelineConfig base_cfg;
    base_cfg.use_e2sf = false;
    base_cfg.use_dsfa = false;
    base_cfg.frame_rate_hz = frame_rate_hz;
    base_cfg.dsfa = options.dsfa;
    const auto base = ec::simulate_pipeline(stream, spec, gpu_mapping,
                                            platform, densities, base_cfg);

    auto e2sf_cfg = base_cfg;
    e2sf_cfg.use_e2sf = true;
    const auto e2sf = ec::simulate_pipeline(stream, spec, gpu_mapping,
                                            platform, densities, e2sf_cfg);

    auto dsfa_cfg = e2sf_cfg;
    dsfa_cfg.use_dsfa = true;
    const auto dsfa = ec::simulate_pipeline(stream, spec, gpu_mapping,
                                            platform, densities, dsfa_cfg);

    // The full Ev-Edge run additionally executes every dispatched batch
    // on the real batched kernels (reduced accuracy-scale functional
    // twin, DAVIS frames downsampled to its input extent).
    en::FunctionalNetwork fnet(
        en::build_network(id, options.accuracy_scale), options.seed);
    ec::BatchExecutor executor(fnet);
    // Density-adaptive routing: the first dispatched batch calibrates the
    // per-layer dense/CSR plan (bitwise-neutral, see exec_plan.hpp).
    executor.enable_execution_planner();
    ec::PipelineConfig full_cfg;
    full_cfg.use_e2sf = true;
    full_cfg.use_dsfa = true;
    full_cfg.dsfa = options.dsfa;
    full_cfg.frame_rate_hz = frame_rate_hz;
    full_cfg.executor = &executor;
    const auto full = ec::simulate_pipeline(
        stream, spec, runtime.mapping(), platform, densities, full_cfg);

    // Throughput-normalized per-frame service latency — comparable to
    // the paper's per-inference measurement (end-to-end latency with
    // queueing is reported by the DSFA ablation bench instead).
    const double s_e2sf =
        base.mean_service_per_frame_us / e2sf.mean_service_per_frame_us;
    const double s_dsfa =
        base.mean_service_per_frame_us / dsfa.mean_service_per_frame_us;
    const double s_full =
        base.mean_service_per_frame_us / full.mean_service_per_frame_us;
    const double e_base = base.total_energy_mj /
                          static_cast<double>(base.source_frames_completed);
    const double e_evedge =
        full.total_energy_mj /
        static_cast<double>(full.source_frames_completed);
    const double e_full = e_base / std::max(e_evedge, 1e-12);
    min_speed = std::min(min_speed, s_full);
    max_speed = std::max(max_speed, s_full);

    std::printf("%-20s %-9.2f %-9.2f %-9.2f %-9.2f %-10.2f %-8.2f %-9.3f\n",
                spec.name.c_str(), s_e2sf, s_dsfa, s_full, e_full,
                dsfa.dsfa.mean_merge_factor(), executor.stats().mean_batch(),
                executor.stats().mean_ms_per_batch());
  }
  eb::print_rule(88);
  std::printf(
      "combined speedup spread: %.2fx - %.2fx (paper: 1.28x - 2.05x "
      "latency, 1.23x - 2.15x energy)\n",
      min_speed, max_speed);
  return 0;
}
