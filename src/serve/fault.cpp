#include "serve/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <utility>

namespace evedge::serve {

namespace {

[[nodiscard]] std::uint64_t site_key(int id, std::int64_t index) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(index));
}

}  // namespace

const char* to_string(FaultType type) noexcept {
  switch (type) {
    case FaultType::kWorkerException: return "worker-exception";
    case FaultType::kLatencySpike: return "latency-spike";
    case FaultType::kCorruptFrame: return "corrupt-frame";
    case FaultType::kStreamStall: return "stream-stall";
    case FaultType::kStreamDisconnect: return "stream-disconnect";
  }
  return "unknown";
}

FaultPlan FaultPlan::seeded(std::uint64_t seed,
                            const FaultPlanOptions& options) {
  FaultPlan plan;
  plan.seed = seed;
  // mt19937_64 + explicit modular draws: identical sequences on every
  // platform (std::uniform_int_distribution is not portable across
  // standard libraries).
  std::mt19937_64 rng(seed);
  const auto draw = [&rng](std::int64_t bound) {
    return bound > 0 ? static_cast<std::int64_t>(
                           rng() % static_cast<std::uint64_t>(bound))
                     : 0;
  };
  const std::int64_t seqs = std::max<std::int64_t>(
      std::int64_t{1}, options.frames_per_stream_hint);
  const std::int64_t batches = std::max<std::int64_t>(
      std::int64_t{1}, options.batches_per_worker_hint);

  for (int i = 0; i < options.corrupt_frames; ++i) {
    FaultSpec spec;
    spec.type = FaultType::kCorruptFrame;
    spec.stream_id = static_cast<int>(draw(options.streams));
    spec.seq = draw(seqs);
    spec.corrupt = static_cast<CorruptKind>(rng() % 3);
    plan.add(spec);
  }
  for (int i = 0; i < options.stalls; ++i) {
    FaultSpec spec;
    spec.type = FaultType::kStreamStall;
    spec.stream_id = static_cast<int>(draw(options.streams));
    spec.seq = draw(seqs);
    spec.delay_ms = options.stall_ms;
    plan.add(spec);
  }
  // Disconnects: one per stream at most, in the upper half of the seq
  // space so the stream serves some frames before dying.
  std::vector<int> stream_ids(static_cast<std::size_t>(
      std::max(1, options.streams)));
  for (std::size_t s = 0; s < stream_ids.size(); ++s) {
    stream_ids[s] = static_cast<int>(s);
  }
  for (std::size_t s = stream_ids.size(); s > 1; --s) {  // Fisher-Yates
    std::swap(stream_ids[s - 1],
              stream_ids[static_cast<std::size_t>(draw(
                  static_cast<std::int64_t>(s)))]);
  }
  const int disconnects = std::min(
      options.disconnects, static_cast<int>(stream_ids.size()));
  for (int i = 0; i < disconnects; ++i) {
    FaultSpec spec;
    spec.type = FaultType::kStreamDisconnect;
    spec.stream_id = stream_ids[static_cast<std::size_t>(i)];
    spec.seq = seqs / 2 + draw(std::max<std::int64_t>(1, seqs / 2));
    plan.add(spec);
  }
  for (int i = 0; i < options.worker_exceptions; ++i) {
    FaultSpec spec;
    spec.type = FaultType::kWorkerException;
    spec.worker_id = static_cast<int>(draw(options.workers));
    spec.batch = draw(batches);
    plan.add(spec);
  }
  for (int i = 0; i < options.latency_spikes; ++i) {
    FaultSpec spec;
    spec.type = FaultType::kLatencySpike;
    spec.worker_id = static_cast<int>(draw(options.workers));
    spec.batch = draw(batches);
    spec.delay_ms = options.spike_ms;
    plan.add(spec);
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan) {
  for (const FaultSpec& spec : plan.specs) {
    switch (spec.type) {
      case FaultType::kCorruptFrame:
      case FaultType::kStreamStall:
      case FaultType::kStreamDisconnect:
        stream_sites_[site_key(spec.stream_id, spec.seq)].push_back(spec);
        break;
      case FaultType::kWorkerException:
      case FaultType::kLatencySpike:
        worker_sites_[site_key(spec.worker_id, spec.batch)].push_back(spec);
        break;
    }
  }
}

std::span<const FaultSpec> FaultInjector::at_stream(
    int stream_id, std::int64_t seq) const {
  const auto it = stream_sites_.find(site_key(stream_id, seq));
  return it != stream_sites_.end() ? std::span<const FaultSpec>(it->second)
                                   : std::span<const FaultSpec>{};
}

std::span<const FaultSpec> FaultInjector::at_worker(
    int worker_id, std::int64_t batch) const {
  const auto it = worker_sites_.find(site_key(worker_id, batch));
  return it != worker_sites_.end() ? std::span<const FaultSpec>(it->second)
                                   : std::span<const FaultSpec>{};
}

void FaultInjector::record(FaultType type) noexcept {
  switch (type) {
    case FaultType::kWorkerException:
      worker_exceptions_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultType::kLatencySpike:
      latency_spikes_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultType::kCorruptFrame:
      corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultType::kStreamStall:
      stream_stalls_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultType::kStreamDisconnect:
      stream_disconnects_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

FaultInjectionCounts FaultInjector::counts() const noexcept {
  FaultInjectionCounts c;
  c.worker_exceptions = worker_exceptions_.load(std::memory_order_relaxed);
  c.latency_spikes = latency_spikes_.load(std::memory_order_relaxed);
  c.corrupt_frames = corrupt_frames_.load(std::memory_order_relaxed);
  c.stream_stalls = stream_stalls_.load(std::memory_order_relaxed);
  c.stream_disconnects =
      stream_disconnects_.load(std::memory_order_relaxed);
  return c;
}

void FaultInjector::corrupt(const FaultSpec& spec,
                            sparse::SparseFrame& frame) {
  // from_sorted_entries adopts entries unchecked — exactly how a buggy
  // driver hands over garbage without tripping constructor validation.
  const int h = frame.height();
  const int w = frame.width();
  switch (spec.corrupt) {
    case CorruptKind::kOutOfBoundsCoordinate:
      frame.positive() = sparse::CooChannel::from_sorted_entries(
          h, w,
          {sparse::CooEntry{static_cast<std::int32_t>(h) + 7,
                            static_cast<std::int32_t>(w) + 3, 1.0f}});
      break;
    case CorruptKind::kBadTiming:
      frame.t_end = frame.t_start - 1;
      break;
    case CorruptKind::kNonFiniteValue:
      frame.negative() = sparse::CooChannel::from_sorted_entries(
          h, w,
          {sparse::CooEntry{0, 0,
                            std::numeric_limits<float>::quiet_NaN()}});
      break;
  }
}

}  // namespace evedge::serve
