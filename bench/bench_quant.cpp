// INT8 engine benchmark: times the real int8 kernels against the FP32
// fast paths on identical inputs at DAVIS346-scale shapes — dense
// im2col+GEMM convs across the encoder pyramid, the sparse gather
// kernels at event densities, and the fully connected head — and writes
// BENCH_quant.json (gated by scripts/check_bench_regression.py like the
// kernel bench). The parity column is the max abs difference between the
// int8 kernel's dequantized output and the float fake-quant reference of
// the same quantization decisions; the bench exits non-zero when any
// record's parity exceeds one quantization step of its output (the
// subsystem's precision contract), so CI gets a numerical smoke test of
// the int8 backend for free.
//
// Usage: bench_quant [output.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "nn/kernels.hpp"
#include "quant/int8_kernels.hpp"
#include "quant/qnetwork.hpp"
#include "quant/quantizer.hpp"
#include "sparse/sparse_ops.hpp"
#include "sparse/tensor.hpp"

namespace eq = evedge::quant;
namespace en = evedge::nn;
namespace es = evedge::sparse;
using evedge::bench::time_best_ms;

namespace {

struct Result {
  std::string kernel;
  std::string shape;
  double density = 1.0;
  double ref_ms = 0.0;   ///< FP32 fast path
  double fast_ms = 0.0;  ///< INT8 path
  double max_abs_diff = 0.0;  ///< int8 vs fake-quant float reference
  double step = 0.0;          ///< one quantization step of the output

  [[nodiscard]] double speedup() const {
    return fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
  }
};

es::DenseTensor random_tensor(const es::TensorShape& shape,
                              std::uint64_t seed, float range = 1.0f) {
  es::DenseTensor t(shape);
  t.fill_random(seed, range);
  return t;
}

es::DenseTensor sparsify(es::DenseTensor t, double density) {
  const auto keep_every =
      density > 0.0 ? static_cast<std::size_t>(1.0 / density) : t.size();
  std::size_t i = 0;
  for (float& v : t.data()) {
    if (i++ % keep_every != 0) v = 0.0f;
  }
  return t;
}

/// Dense conv: FP32 conv2d (GEMM/direct dispatch) vs int8_conv2d.
Result bench_dense(const std::string& label, const es::TensorShape& in,
                   int out_channels, int kernel, int stride, int padding,
                   int reps) {
  const es::Conv2dSpec spec{in.c, out_channels, kernel, stride, padding};
  const auto input = random_tensor(in, 11, 1.5f);
  const auto weights = random_tensor(
      {out_channels, in.c, kernel, kernel}, 12, 0.2f);
  const std::vector<float> bias(static_cast<std::size_t>(out_channels),
                                0.05f);
  const auto q = eq::quantize_conv_weights(weights, spec);
  const auto s_x = eq::Int8Scale::for_range(eq::max_abs(input.data()));
  es::Workspace ws_f;
  es::Workspace ws_i;

  Result r;
  r.kernel = "int8_conv2d_gemm";
  r.shape = label;
  r.ref_ms = time_best_ms(
      [&] { (void)en::conv2d(input, weights, bias, spec, &ws_f); }, reps);
  r.fast_ms = time_best_ms(
      [&] { (void)eq::int8_conv2d(input, q, bias, s_x, &ws_i); }, reps);

  es::DenseTensor qin;
  eq::quantize_activations_reference(input, s_x, qin);
  const auto reference = en::conv2d(qin, q.fake, bias, spec, &ws_f);
  r.max_abs_diff = es::max_abs_diff(
      eq::int8_conv2d(input, q, bias, s_x, &ws_i), reference);
  r.step = eq::output_quant_step(reference);
  return r;
}

/// Sparse submanifold: FP32 gather kernel vs the int8 gather kernel.
Result bench_submanifold(const std::string& label, int h, int w,
                         int in_channels, int out_channels, int kernel,
                         double density, int reps) {
  const es::Conv2dSpec spec{in_channels, out_channels, kernel, 1,
                            (kernel - 1) / 2};
  const auto dense_in = sparsify(
      random_tensor({1, in_channels, h, w}, 21, 1.5f), density);
  const auto input = es::dense_to_channels(dense_in);
  const auto weights = random_tensor(
      {out_channels, in_channels, kernel, kernel}, 22, 0.2f);
  const auto q = eq::quantize_conv_weights(weights, spec);
  const auto s_x = eq::Int8Scale::for_range(eq::max_abs(dense_in.data()));
  es::Workspace ws_f;
  es::Workspace ws_i;

  Result r;
  r.kernel = "int8_submanifold";
  r.shape = label;
  r.density = density;
  r.ref_ms = time_best_ms(
      [&] {
        (void)es::submanifold_conv2d(input, weights, {}, spec, nullptr,
                                     &ws_f);
      },
      reps);
  r.fast_ms = time_best_ms(
      [&] {
        (void)eq::int8_submanifold_conv2d(input, q, {}, s_x, nullptr,
                                          &ws_i);
      },
      reps);

  es::DenseTensor qin;
  eq::quantize_activations_reference(dense_in, s_x, qin);
  const auto reference = es::channels_to_dense(es::submanifold_conv2d(
      es::dense_to_channels(qin), q.fake, {}, spec, nullptr, &ws_f));
  r.max_abs_diff = es::max_abs_diff(
      es::channels_to_dense(eq::int8_submanifold_conv2d(
          input, q, {}, s_x, nullptr, &ws_i)),
      reference);
  r.step = eq::output_quant_step(reference);
  return r;
}

/// CSR strided sparse conv: FP32 vs int8.
Result bench_sparse_csr(const std::string& label, int h, int w,
                        int in_channels, int out_channels, int kernel,
                        int stride, int padding, double density, int reps) {
  const es::Conv2dSpec spec{in_channels, out_channels, kernel, stride,
                            padding};
  const auto dense_in = sparsify(
      random_tensor({1, in_channels, h, w}, 31, 1.5f), density);
  const auto input = es::dense_to_channels(dense_in);
  const auto weights = random_tensor(
      {out_channels, in_channels, kernel, kernel}, 32, 0.2f);
  const auto q = eq::quantize_conv_weights(weights, spec);
  const auto s_x = eq::Int8Scale::for_range(eq::max_abs(dense_in.data()));
  es::Workspace ws_f;
  es::Workspace ws_i;

  Result r;
  r.kernel = "int8_sparse_csr";
  r.shape = label;
  r.density = density;
  r.ref_ms = time_best_ms(
      [&] {
        (void)es::sparse_conv2d_csr(input, weights, {}, spec, nullptr,
                                    &ws_f);
      },
      reps);
  r.fast_ms = time_best_ms(
      [&] {
        (void)eq::int8_sparse_conv2d_csr(input, q, {}, s_x, nullptr,
                                         &ws_i);
      },
      reps);

  es::DenseTensor qin;
  eq::quantize_activations_reference(dense_in, s_x, qin);
  const auto reference = es::channels_to_dense(es::sparse_conv2d_csr(
      es::dense_to_channels(qin), q.fake, {}, spec, nullptr, &ws_f));
  r.max_abs_diff = es::max_abs_diff(
      es::channels_to_dense(eq::int8_sparse_conv2d_csr(
          input, q, {}, s_x, nullptr, &ws_i)),
      reference);
  r.step = eq::output_quant_step(reference);
  return r;
}

/// Fully connected head: FP32 vs int8.
Result bench_fc(const std::string& label, const es::TensorShape& in,
                int out_features, int reps) {
  const auto features = static_cast<int>(in.element_count()) / in.n;
  const es::Conv2dSpec spec{features, out_features, 1, 1, 0};
  const auto input = random_tensor(in, 41, 1.0f);
  const auto weights = random_tensor({out_features, features, 1, 1}, 42,
                                     0.1f);
  const std::vector<float> bias(static_cast<std::size_t>(out_features),
                                0.01f);
  const auto q = eq::quantize_conv_weights(weights, spec);
  const auto s_x = eq::Int8Scale::for_range(eq::max_abs(input.data()));
  es::Workspace ws;

  Result r;
  r.kernel = "int8_fully_connected";
  r.shape = label;
  r.ref_ms = time_best_ms(
      [&] { (void)en::fully_connected(input, weights, bias); }, reps);
  r.fast_ms = time_best_ms(
      [&] { (void)eq::int8_fully_connected(input, q, bias, s_x, &ws); },
      reps);

  es::DenseTensor qin;
  eq::quantize_activations_reference(input, s_x, qin);
  const auto reference = en::fully_connected(qin, q.fake, bias);
  r.max_abs_diff = es::max_abs_diff(
      eq::int8_fully_connected(input, q, bias, s_x, &ws), reference);
  r.step = eq::output_quant_step(reference);
  return r;
}

[[nodiscard]] bool write_json(const std::vector<Result>& results,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"threads\": %d,\n  \"results\": [\n",
               evedge::core::parallel_thread_count());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"shape\": \"%s\", "
                 "\"density\": %.4f, \"ref_ms\": %.4f, \"fast_ms\": %.4f, "
                 "\"speedup\": %.2f, \"max_abs_diff\": %.3g, "
                 "\"quant_step\": %.3g}%s\n",
                 r.kernel.c_str(), r.shape.c_str(), r.density, r.ref_ms,
                 r.fast_ms, r.speedup(), r.max_abs_diff, r.step,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_quant.json";
  std::vector<Result> results;

  std::printf("int8 engine benchmark (threads=%d)\n",
              evedge::core::parallel_thread_count());
  std::printf("%-22s %-26s %8s %10s %10s %9s %12s\n", "kernel", "shape",
              "density", "fp32_ms", "int8_ms", "speedup", "diff/step");

  const auto report = [&](Result r) {
    std::printf("%-22s %-26s %8.4f %10.3f %10.3f %8.1fx %12.3g\n",
                r.kernel.c_str(), r.shape.c_str(), r.density, r.ref_ms,
                r.fast_ms, r.speedup(),
                r.step > 0.0 ? r.max_abs_diff / r.step : 0.0);
    std::fflush(stdout);
    results.push_back(std::move(r));
  };

  // --- Dense int8 GEMM across the DAVIS346 encoder pyramid: the event
  // input layer, the wide mid-pyramid layers and a strided downsample.
  report(bench_dense("2x260x346 -> 16 k3s1",
                     es::TensorShape{1, 2, 260, 346}, 16, 3, 1, 1, 7));
  report(bench_dense("16x130x173 -> 32 k3s1",
                     es::TensorShape{1, 16, 130, 173}, 32, 3, 1, 1, 7));
  report(bench_dense("32x65x87 -> 64 k3s1",
                     es::TensorShape{1, 32, 65, 87}, 64, 3, 1, 1, 7));
  report(bench_dense("16x130x173 -> 32 k3s2",
                     es::TensorShape{1, 16, 130, 173}, 32, 3, 2, 1, 7));

  // --- Sparse int8 gather kernels at event densities.
  for (const double d : {0.02, 0.05}) {
    report(bench_submanifold("16x130x173 -> 32 k3", 130, 173, 16, 32, 3, d,
                             7));
  }
  report(bench_sparse_csr("16x260x346 -> 32 k3s2", 260, 346, 16, 32, 3, 2,
                          1, 0.02, 5));

  // --- Fully connected head.
  report(bench_fc("64x16x22 -> 128", es::TensorShape{1, 64, 16, 22}, 128,
                  9));

  const bool wrote = write_json(results, out_path);

  // Precision contract: every record must stay within one quantization
  // step of its fake-quant reference.
  for (const Result& r : results) {
    if (r.max_abs_diff > r.step + 1e-6) {
      std::fprintf(stderr, "parity failure: %s %s diff=%g step=%g\n",
                   r.kernel.c_str(), r.shape.c_str(), r.max_abs_diff,
                   r.step);
      return 1;
    }
  }
  return wrote ? 0 : 1;
}
