#include "obs/trace_io.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace evedge::obs {

namespace {

void append_number_us(std::string& out, double us) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  out += buf;
}

void write_common(std::string& line, const char* ph, const TraceEvent& e) {
  line += "{\"ph\":\"";
  line += ph;
  line += "\",\"pid\":1,\"tid\":";
  line += std::to_string(e.tid);
  line += ",\"ts\":";
  append_number_us(line, static_cast<double>(e.t_ns) / 1e3);
  line += ",\"cat\":\"";
  line += json_escape(e.cat);
  line += "\",\"name\":\"";
  line += json_escape(e.name);
  line += "\"";
}

void write_args(std::string& line, const TraceEvent& e) {
  if (e.arg0_key == nullptr && e.arg1_key == nullptr) return;
  line += ",\"args\":{";
  bool first = true;
  if (e.arg0_key != nullptr) {
    line += "\"";
    line += json_escape(e.arg0_key);
    line += "\":";
    line += std::to_string(e.arg0);
    first = false;
  }
  if (e.arg1_key != nullptr) {
    if (!first) line += ",";
    line += "\"";
    line += json_escape(e.arg1_key);
    line += "\":";
    line += std::to_string(e.arg1);
  }
  line += "}";
}

/// Extracts the raw text of `"key":<value>` from a JSON line; empty
/// when absent. Good enough for the exporter's own one-line events.
[[nodiscard]] std::string raw_field(const std::string& line,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  std::size_t i = at + needle.size();
  if (i >= line.size()) return {};
  if (line[i] == '"') {
    // String value: scan to the closing unescaped quote.
    std::string out;
    for (++i; i < line.size(); ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        const char c = line[++i];
        if (c == 'n') out += '\n';
        else if (c == 't') out += '\t';
        else out += c;
        continue;
      }
      if (line[i] == '"') break;
      out += line[i];
    }
    return out;
  }
  if (line[i] == '{') {
    // Object value: balance braces (args objects are flat, but stay
    // safe against nesting).
    int depth = 0;
    const std::size_t start = i;
    for (; i < line.size(); ++i) {
      if (line[i] == '{') ++depth;
      if (line[i] == '}' && --depth == 0) {
        return line.substr(start, i - start + 1);
      }
    }
    return {};
  }
  const std::size_t start = i;
  while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
  return line.substr(start, i - start);
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os,
                        std::span<const TraceEvent> events) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  std::string line;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    line.clear();
    switch (e.phase) {
      case Phase::kSpan:
        write_common(line, "X", e);
        line += ",\"dur\":";
        append_number_us(line, static_cast<double>(e.dur_ns) / 1e3);
        write_args(line, e);
        break;
      case Phase::kInstant:
        write_common(line, "i", e);
        line += ",\"s\":\"t\"";
        write_args(line, e);
        break;
      case Phase::kCounter:
        write_common(line, "C", e);
        line += ",\"args\":{\"value\":" + std::to_string(e.arg0) + "}";
        break;
    }
    line += "}";
    if (i + 1 < events.size()) line += ",";
    line += "\n";
    os << line;
  }
  os << "]}\n";
}

bool write_chrome_trace_file(const std::string& path,
                             std::span<const TraceEvent> events,
                             std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  write_chrome_trace(out, events);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

std::vector<ParsedEvent> read_chrome_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_chrome_trace: cannot open " + path);
  }
  std::vector<ParsedEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    const std::string ph = raw_field(line, "ph");
    if (ph.empty()) continue;  // array brackets / document framing
    ParsedEvent e;
    e.ph = ph.front();
    e.cat = raw_field(line, "cat");
    e.name = raw_field(line, "name");
    e.args_json = raw_field(line, "args");
    try {
      const std::string ts = raw_field(line, "ts");
      if (!ts.empty()) e.ts_us = std::stod(ts);
      const std::string dur = raw_field(line, "dur");
      if (!dur.empty()) e.dur_us = std::stod(dur);
      const std::string tid = raw_field(line, "tid");
      if (!tid.empty()) e.tid = std::stoi(tid);
    } catch (...) {
      continue;  // malformed line: skip, never throw mid-file
    }
    events.push_back(std::move(e));
  }
  return events;
}

bool event_arg(const ParsedEvent& e, const std::string& key,
               std::int64_t* out) {
  if (e.args_json.empty()) return false;
  const std::string raw = raw_field(e.args_json, key);
  if (raw.empty()) return false;
  try {
    *out = std::stoll(raw);
  } catch (...) {
    return false;
  }
  return true;
}

std::vector<LineageHop> frame_lineage(std::span<const ParsedEvent> events,
                                      std::int64_t stream, std::int64_t seq) {
  std::vector<LineageHop> hops;
  for (const ParsedEvent& e : events) {
    std::int64_t s = -1;
    std::int64_t q = -1;
    if (!event_arg(e, "stream", &s) || !event_arg(e, "seq", &q)) continue;
    if (s != stream || q != seq) continue;
    hops.push_back(LineageHop{e.ph, e.ts_us, e.dur_us, e.tid, e.cat, e.name});
  }
  std::stable_sort(hops.begin(), hops.end(),
                   [](const LineageHop& a, const LineageHop& b) {
                     return a.ts_us < b.ts_us;
                   });
  return hops;
}

void write_parsed_trace(std::ostream& os,
                        std::span<const ParsedEvent> events) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  std::string line;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ParsedEvent& e = events[i];
    line.clear();
    line += "{\"ph\":\"";
    line += e.ph;
    line += "\",\"pid\":1,\"tid\":";
    line += std::to_string(e.tid);
    line += ",\"ts\":";
    append_number_us(line, e.ts_us);
    line += ",\"cat\":\"";
    line += json_escape(e.cat);
    line += "\",\"name\":\"";
    line += json_escape(e.name);
    line += "\"";
    if (e.ph == 'X') {
      line += ",\"dur\":";
      append_number_us(line, e.dur_us);
    }
    if (e.ph == 'i') line += ",\"s\":\"t\"";
    if (!e.args_json.empty()) {
      line += ",\"args\":";
      line += e.args_json;
    }
    line += "}";
    if (i + 1 < events.size()) line += ",";
    line += "\n";
    os << line;
  }
  os << "]}\n";
}

}  // namespace evedge::obs
