#include "nn/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

#include "nn/kernels.hpp"
#include "quant/int8_kernels.hpp"

namespace evedge::nn {

using sparse::DenseTensor;
using sparse::TensorShape;

namespace {

/// He-style init range: sqrt(2 / fan_in), clipped to a sane interval.
[[nodiscard]] float he_range(std::size_t fan_in) {
  const double r = std::sqrt(
      2.0 / static_cast<double>(std::max<std::size_t>(fan_in, 1)));
  return static_cast<float>(std::min(0.6, std::max(0.02, r)));
}

/// Raw steady_clock nanoseconds for ExecObserver stamps (the obs layer
/// rebases them onto its trace epoch).
[[nodiscard]] std::uint64_t exec_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shared validity check for weight-node access (const and non-const).
void require_weight_node(const std::vector<DenseTensor>& weights,
                         int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(weights.size()) ||
      weights[static_cast<std::size_t>(node_id)].size() == 0) {
    throw std::invalid_argument("node " + std::to_string(node_id) +
                                " has no weights");
  }
}

}  // namespace

DenseTensor center_crop(const DenseTensor& t, int h, int w) {
  const TensorShape& s = t.shape();
  if (h > s.h || w > s.w) {
    throw std::invalid_argument("center_crop: target larger than source");
  }
  if (h == s.h && w == s.w) return t;
  const int oy = (s.h - h) / 2;
  const int ox = (s.w - w) / 2;
  DenseTensor out(TensorShape{s.n, s.c, h, w});
  for (int n = 0; n < s.n; ++n) {
    for (int c = 0; c < s.c; ++c) {
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          out.at(n, c, y, x) = t.at(n, c, y + oy, x + ox);
        }
      }
    }
  }
  return out;
}

FunctionalNetwork::FunctionalNetwork(NetworkSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)) {
  spec_.graph.validate();
  const auto n = spec_.graph.size();
  weights_.resize(n);
  biases_.resize(n);
  channel_leak_.resize(n);
  channel_threshold_.resize(n);
  lif_.resize(n);
  is_spiking_.assign(n, false);
  time_invariant_.assign(n, 0);

  std::mt19937_64 rng(seed);
  for (const LayerNode& node : spec_.graph.nodes()) {
    const LayerSpec& ls = node.spec;
    const auto idx = static_cast<std::size_t>(node.id);
    switch (ls.kind) {
      case LayerKind::kConv:
      case LayerKind::kTransposedConv:
      case LayerKind::kSpikingConv:
      case LayerKind::kAdaptiveSpikingConv: {
        weights_[idx] = DenseTensor(TensorShape{ls.conv.out_channels,
                                                ls.conv.in_channels,
                                                ls.conv.kernel,
                                                ls.conv.kernel});
        const auto fan_in = static_cast<std::size_t>(ls.conv.in_channels) *
                            static_cast<std::size_t>(ls.conv.kernel) *
                            static_cast<std::size_t>(ls.conv.kernel);
        weights_[idx].fill_random(rng(), he_range(fan_in));
        biases_[idx].assign(static_cast<std::size_t>(ls.conv.out_channels),
                            0.0f);
        break;
      }
      case LayerKind::kFullyConnected: {
        const auto in_features = ls.input_elements();
        weights_[idx] = DenseTensor(
            TensorShape{ls.fc_out, static_cast<int>(in_features), 1, 1});
        weights_[idx].fill_random(rng(), he_range(in_features));
        biases_[idx].assign(static_cast<std::size_t>(ls.fc_out), 0.0f);
        break;
      }
      default:
        break;
    }
    if (ls.kind == LayerKind::kInput) {
      // The event input changes every timestep; any further inputs (the
      // grayscale image) are constant across the presentation.
      time_invariant_[idx] = node.id != spec_.graph.input_ids().front();
    } else {
      // Stateless nodes fed only by constant inputs compute the same
      // value at every timestep — run_impl caches them after t == 0.
      bool invariant = !node.parents.empty();
      for (const int parent : node.parents) {
        invariant = invariant &&
                    time_invariant_[static_cast<std::size_t>(parent)] != 0;
      }
      time_invariant_[idx] =
          invariant && domain_of(ls.kind) == Domain::kAnn;
    }
    if (ls.kind == LayerKind::kSpikingConv ||
        ls.kind == LayerKind::kAdaptiveSpikingConv) {
      is_spiking_[idx] = true;
      if (ls.kind == LayerKind::kAdaptiveSpikingConv) {
        // Stand-in for learned per-channel dynamics: deterministic
        // per-channel leak/threshold spread around the shared values.
        std::uniform_real_distribution<float> leak_d(0.7f, 0.97f);
        std::uniform_real_distribution<float> vth_d(0.6f * ls.lif.v_threshold,
                                                    1.4f * ls.lif.v_threshold);
        for (int c = 0; c < ls.conv.out_channels; ++c) {
          channel_leak_[idx].push_back(leak_d(rng));
          channel_threshold_[idx].push_back(vth_d(rng));
        }
      }
      lif_[idx] = LifState(ls.out_shape, ls.lif, channel_leak_[idx],
                           channel_threshold_[idx]);
    }
  }
}

FunctionalNetwork FunctionalNetwork::clone() const {
  // Rebuild from the spec (cheapest way to get every derived table
  // right), then overwrite the learned state with the live values so
  // post-construction weight edits travel with the clone.
  FunctionalNetwork copy(spec_, 0);
  copy.weights_ = weights_;
  copy.biases_ = biases_;
  copy.channel_leak_ = channel_leak_;
  copy.channel_threshold_ = channel_threshold_;
  copy.lif_ = lif_;
  return copy;
}

DenseTensor& FunctionalNetwork::weights(int node_id) {
  require_weight_node(weights_, node_id);
  return weights_[static_cast<std::size_t>(node_id)];
}

const DenseTensor& FunctionalNetwork::weights(int node_id) const {
  require_weight_node(weights_, node_id);
  return weights_[static_cast<std::size_t>(node_id)];
}

std::vector<float>& FunctionalNetwork::bias(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(biases_.size())) {
    throw std::invalid_argument("bad node id");
  }
  return biases_[static_cast<std::size_t>(node_id)];
}

const std::vector<float>& FunctionalNetwork::bias(int node_id) const {
  if (node_id < 0 || node_id >= static_cast<int>(biases_.size())) {
    throw std::invalid_argument("bad node id");
  }
  return biases_[static_cast<std::size_t>(node_id)];
}

const quant::QuantPlan* FunctionalNetwork::set_quant_plan(
    const quant::QuantPlan* plan) {
  // Validate the whole plan before mutating any state: a rejected plan
  // must leave the previous execution mode fully intact.
  if (plan != nullptr) {
    for (const quant::NodeQuantPlan& nq : plan->nodes) {
      if (nq.node_id < 0 ||
          nq.node_id >= static_cast<int>(spec_.graph.size()) ||
          !is_weight_layer(spec_.graph.node(nq.node_id).spec.kind)) {
        throw std::invalid_argument("set_quant_plan: node " +
                                    std::to_string(nq.node_id) +
                                    " is not a weight layer of this graph");
      }
    }
  }
  const quant::QuantPlan* previous = quant_plan_;
  quant_plan_ = plan;
  node_quant_.assign(spec_.graph.size(), nullptr);
  if (plan != nullptr) {
    for (const quant::NodeQuantPlan& nq : plan->nodes) {
      node_quant_[static_cast<std::size_t>(nq.node_id)] = &nq;
    }
  }
  return previous;
}

const ExecutionPlan* FunctionalNetwork::set_execution_plan(
    const ExecutionPlan* plan) {
  // Validate the whole plan before mutating any state (atomic install,
  // mirroring set_quant_plan).
  if (plan != nullptr && !plan->route.empty()) {
    if (plan->route.size() != spec_.graph.size()) {
      throw std::invalid_argument(
          "set_execution_plan: route table size mismatch");
    }
    for (std::size_t i = 0; i < plan->route.size(); ++i) {
      const Route r = plan->route[i];
      if (r == Route::kDense) continue;
      const LayerNode& node = spec_.graph.node(static_cast<int>(i));
      const LayerSpec& ls = node.spec;
      if ((ls.kind != LayerKind::kConv && ls.kind != LayerKind::kSpikingConv &&
           ls.kind != LayerKind::kAdaptiveSpikingConv) ||
          node.parents.size() != 1) {
        throw std::invalid_argument("set_execution_plan: node " +
                                    std::to_string(i) +
                                    " cannot take a sparse route");
      }
      // The sparse kernels add bias at active sites only; a non-zero
      // bias would diverge from dense execution at inactive sites.
      for (const float b : biases_[i]) {
        if (b != 0.0f) {
          throw std::invalid_argument(
              "set_execution_plan: sparse route on node " +
              std::to_string(i) + " requires zero bias");
        }
      }
      if (r == Route::kSubmanifold &&
          (ls.conv.stride != 1 || ls.out_shape.h != ls.in_shape.h ||
           ls.out_shape.w != ls.in_shape.w)) {
        throw std::invalid_argument(
            "set_execution_plan: submanifold route on node " +
            std::to_string(i) + " needs stride-1 same-extent geometry");
      }
    }
  }
  const ExecutionPlan* previous = exec_plan_;
  exec_plan_ = plan;
  node_route_.assign(spec_.graph.size(), Route::kDense);
  if (plan != nullptr) {
    for (std::size_t i = 0;
         i < std::min(plan->route.size(), node_route_.size()); ++i) {
      node_route_[i] = plan->route[i];
    }
  }
  return previous;
}

Route FunctionalNetwork::effective_route(std::size_t idx) const noexcept {
  // Hooks observe (and may mutate) dense activations of every node, so
  // any installed hook forces dense execution for the whole run.
  if (exec_plan_ == nullptr || activation_hook_) return Route::kDense;
  const Route r =
      idx < node_route_.size() ? node_route_[idx] : Route::kDense;
  if (r == Route::kDense) return r;
  // Simulate-mode quant nodes run the float fake-quant oracle, which is
  // defined over dense tensors.
  const quant::NodeQuantPlan* nq = node_quant(idx);
  if (nq != nullptr && quant_plan_->simulate) return Route::kDense;
  return r;
}

void FunctionalNetwork::prepare_packed_weights() {
  if (exec_plan_ == nullptr || activation_hook_) return;
  for (std::size_t i = 0; i < node_route_.size(); ++i) {
    if (effective_route(i) == Route::kDense) continue;
    // Quantized nodes reduce against the plan's own packed int8 rows;
    // narrow FP32 spiking kCsr nodes scatter against the raw weight
    // layout.
    if (node_quant(i) != nullptr) continue;
    if (is_spiking_[i] && node_route_[i] == Route::kCsr &&
        scatter_current_route(
            spec_.graph.node(static_cast<int>(i)).spec.conv)) {
      continue;
    }
    sparse::pack_conv_weights(weights_[i],
                              workspace_.packed_slot(static_cast<int>(i)));
  }
}

void FunctionalNetwork::densify_samples(
    const std::vector<sparse::SparseSample>& samples,
    sparse::DenseTensor& out) {
  const sparse::SparseSample& first = samples.front();
  out.reset(TensorShape{static_cast<int>(samples.size()),
                        static_cast<int>(first.size()), first[0].height(),
                        first[0].width()});
  for (std::size_t n = 0; n < samples.size(); ++n) {
    sparse::channels_into_slice(samples[n], out, static_cast<int>(n));
  }
}

const DenseTensor& FunctionalNetwork::dense_value(int node_id) {
  const auto idx = static_cast<std::size_t>(node_id);
  if (!dense_valid_[idx]) {
    if (!sparse_valid_[idx]) {
      throw std::logic_error("dense_value: node " + std::to_string(node_id) +
                             " has no value this timestep");
    }
    densify_samples(sparse_values_[idx], values_[idx]);
    dense_valid_[idx] = 1;
    ++exec_stats_.densify_boundaries;
  }
  return values_[idx];
}

const std::vector<sparse::SparseSample>& FunctionalNetwork::sparse_value(
    int node_id) {
  const auto idx = static_cast<std::size_t>(node_id);
  if (!sparse_valid_[idx]) {
    const DenseTensor& dense = dense_value(node_id);
    auto& samples = sparse_values_[idx];
    samples.resize(static_cast<std::size_t>(dense.shape().n));
    for (int n = 0; n < dense.shape().n; ++n) {
      samples[static_cast<std::size_t>(n)] =
          sparse::slice_to_channels(dense, n);
    }
    sparse_valid_[idx] = 1;
    ++exec_stats_.sparsify_boundaries;
  }
  return sparse_values_[idx];
}

void FunctionalNetwork::run_sparse_conv(const LayerNode& node,
                                        std::size_t idx, Route route) {
  const LayerSpec& ls = node.spec;
  const std::vector<sparse::SparseSample>& input =
      sparse_value(node.parents.front());
  auto& out = sparse_values_[idx];
  sparse::ConvWork work;
  if (const quant::NodeQuantPlan* nq = node_quant(idx)) {
    // Real int8 gather kernels, sample by sample (the inner reduction
    // threads itself); the quant plan carries the packed int8 rows.
    out.resize(input.size());
    for (std::size_t n = 0; n < input.size(); ++n) {
      out[n] = route == Route::kSubmanifold
                   ? quant::int8_submanifold_conv2d(
                         input[n], nq->weights, biases_[idx],
                         nq->input_scale, &work, &workspace_)
                   : quant::int8_sparse_conv2d_csr(
                         input[n], nq->weights, biases_[idx],
                         nq->input_scale, &work, &workspace_);
    }
  } else {
    const std::vector<float>& packed =
        workspace_.packed_slot(static_cast<int>(idx));
    out = route == Route::kSubmanifold
              ? sparse::submanifold_conv2d_batch(
                    input, weights_[idx], biases_[idx], ls.conv, &work,
                    &workspace_, sparse::SubmanifoldThreading::kAuto, packed)
              : sparse::sparse_conv2d_csr_batch(
                    input, weights_[idx], biases_[idx], ls.conv, &work,
                    &workspace_, sparse::SubmanifoldThreading::kAuto, packed);
  }
  sparse_valid_[idx] = 1;
  dense_valid_[idx] = 0;
  ++exec_stats_.sparse_node_runs;
  exec_stats_.sparse_macs += work.sparse_macs;
  exec_stats_.dense_macs_avoided += work.dense_macs;
}

void FunctionalNetwork::run_quant_conv(const quant::NodeQuantPlan& nq,
                                       const DenseTensor& input,
                                       std::span<const float> bias,
                                       DenseTensor& out) {
  if (quant_plan_->simulate) {
    quant::quantize_activations_reference(input, nq.input_scale,
                                          quant_staging_);
    conv2d_into(quant_staging_, nq.weights.fake, bias, nq.weights.spec, out,
                &workspace_);
    return;
  }
  quant::int8_conv2d_into(input, nq.weights, bias, nq.input_scale, out,
                          &workspace_);
}

void FunctionalNetwork::run_quant_tconv(const quant::NodeQuantPlan& nq,
                                        const DenseTensor& input,
                                        std::span<const float> bias,
                                        DenseTensor& out) {
  if (quant_plan_->simulate) {
    quant::quantize_activations_reference(input, nq.input_scale,
                                          quant_staging_);
    out = transposed_conv2d(quant_staging_, nq.weights.fake, bias,
                            nq.weights.spec);
    return;
  }
  quant::int8_transposed_conv2d_into(input, nq.weights, bias, nq.input_scale,
                                     out, &workspace_);
}

DenseTensor FunctionalNetwork::run_quant_fc(const quant::NodeQuantPlan& nq,
                                            const DenseTensor& input,
                                            std::span<const float> bias) {
  if (quant_plan_->simulate) {
    quant::quantize_activations_reference(input, nq.input_scale,
                                          quant_staging_);
    return fully_connected(quant_staging_, nq.weights.fake, bias);
  }
  return quant::int8_fully_connected(input, nq.weights, bias, nq.input_scale,
                                     &workspace_);
}

void FunctionalNetwork::reset_spiking_state() {
  for (std::size_t i = 0; i < lif_.size(); ++i) {
    if (is_spiking_[i]) lif_[i].reset();
  }
}

void FunctionalNetwork::ensure_lif_batch(int batch) {
  for (const LayerNode& node : spec_.graph.nodes()) {
    const auto idx = static_cast<std::size_t>(node.id);
    if (!is_spiking_[idx] || lif_[idx].shape().n == batch) continue;
    const LayerSpec& ls = node.spec;
    // Independent per-sample membranes: the LIF update is elementwise,
    // so batching the state shape is all per-sample isolation needs.
    lif_[idx] = LifState(
        TensorShape{batch, ls.out_shape.c, ls.out_shape.h, ls.out_shape.w},
        ls.lif, channel_leak_[idx], channel_threshold_[idx]);
  }
}

DenseTensor FunctionalNetwork::run(std::span<const DenseTensor> event_steps,
                                   const DenseTensor* image) {
  return run_impl(event_steps, image, 1);
}

DenseTensor FunctionalNetwork::run_batched(
    std::span<const DenseTensor> event_steps, const DenseTensor* image) {
  if (event_steps.empty()) {
    throw std::invalid_argument("run_batched: no event steps");
  }
  const int batch = event_steps[0].shape().n;
  for (const DenseTensor& step : event_steps) {
    if (step.shape().n != batch) {
      throw std::invalid_argument("run_batched: inconsistent batch sizes");
    }
  }
  if (image != nullptr && image->shape().n == 1 && batch > 1) {
    // Tile the (batch-invariant) image across the batch once.
    const TensorShape& is = image->shape();
    image_batch_.reset(TensorShape{batch, is.c, is.h, is.w});
    const std::size_t block = image->stride_n();
    for (int n = 0; n < batch; ++n) {
      std::copy(image->raw(), image->raw() + block,
                image_batch_.raw() + static_cast<std::size_t>(n) * block);
    }
    image = &image_batch_;
  }
  return run_impl(event_steps, image, batch);
}

DenseTensor FunctionalNetwork::run_impl(
    std::span<const DenseTensor> event_steps, const DenseTensor* image,
    int batch) {
  const std::vector<int> inputs = spec_.graph.input_ids();
  const std::vector<int> outputs = spec_.graph.output_ids();
  if (static_cast<int>(event_steps.size()) != spec_.timesteps) {
    throw std::invalid_argument(
        "run: expected " + std::to_string(spec_.timesteps) +
        " timestep inputs, got " + std::to_string(event_steps.size()));
  }
  if (inputs.size() > 1 && image == nullptr) {
    throw std::invalid_argument("run: network requires an image input");
  }
  ensure_lif_batch(batch);
  reset_spiking_state();

  DenseTensor accumulated;
  const std::size_t n_nodes = spec_.graph.size();
  values_.resize(n_nodes);
  sparse_values_.resize(n_nodes);
  std::vector<DenseTensor>& values = values_;
  exec_stats_ = ExecStats{};
  prepare_packed_weights();

  // Timestep-invariant caching: stateless nodes fed only by the constant
  // image input compute identical values every timestep (e.g. the whole
  // Fusion-FlowNet / HALSIE image encoder), so after t == 0 they are
  // skipped and their cached value reused — bitwise identical to
  // recomputation. Hooks observe (and may mutate) every node at every
  // timestep, so an installed hook disables the cache.
  const bool cache_invariant = !activation_hook_;

  for (int t = 0; t < spec_.timesteps; ++t) {
    const DenseTensor& step = event_steps[static_cast<std::size_t>(t)];
    // Every non-cached node recomputes this timestep; neither
    // representation of the previous step's activations is valid any
    // more.
    if (t == 0 || !cache_invariant) {
      dense_valid_.assign(n_nodes, 0);
      sparse_valid_.assign(n_nodes, 0);
    } else {
      for (std::size_t i = 0; i < n_nodes; ++i) {
        if (!time_invariant_[i]) {
          dense_valid_[i] = 0;
          sparse_valid_[i] = 0;
        }
      }
    }
    for (const LayerNode& node : spec_.graph.nodes()) {
      const LayerSpec& ls = node.spec;
      const auto idx = static_cast<std::size_t>(node.id);
      if (t > 0 && cache_invariant && time_invariant_[idx] &&
          (dense_valid_[idx] || sparse_valid_[idx])) {
        continue;  // cached from t == 0
      }
      ++exec_stats_.node_executions;
      std::uint64_t obs_t0 = 0;
      if (exec_observer_ != nullptr) obs_t0 = exec_now_ns();
      // Dense node outputs land in the persistent per-node buffer, so
      // steady state reuses the previous call's allocations; sparse
      // routes fill the per-node COO carrier instead and densify lazily
      // at route boundaries (dense_value).
      DenseTensor& out = values[idx];
      switch (ls.kind) {
        case LayerKind::kInput: {
          const bool is_event_input = node.id == inputs.front();
          const DenseTensor& src = is_event_input ? step : *image;
          const TensorShape& ss = src.shape();
          if (ss.n != batch || ss.c != ls.out_shape.c ||
              ss.h != ls.out_shape.h || ss.w != ls.out_shape.w) {
            throw std::invalid_argument("run: input shape mismatch at '" +
                                        ls.name + "'");
          }
          out = src;
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kConv: {
          const Route route = effective_route(idx);
          if (route != Route::kDense) {
            run_sparse_conv(node, idx, route);
            if (ls.relu_after) {
              // Sparse ReLU: dropping negative entries leaves exactly
              // relu() of the dense image (implicit zeros are fixpoints).
              for (sparse::SparseSample& sample : sparse_values_[idx]) {
                sparse::relu_sample_inplace(sample);
              }
            }
            break;
          }
          const DenseTensor& src = dense_value(node.parents[0]);
          if (const auto* nq = node_quant(idx)) {
            run_quant_conv(*nq, src, biases_[idx], out);
          } else {
            conv2d_into(src, weights_[idx], biases_[idx], ls.conv, out,
                        &workspace_);
          }
          if (ls.relu_after) relu_inplace(out);
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kTransposedConv: {
          const DenseTensor& src = dense_value(node.parents[0]);
          if (const auto* nq = node_quant(idx)) {
            run_quant_tconv(*nq, src, biases_[idx], out);
          } else {
            out = transposed_conv2d(src, weights_[idx], biases_[idx],
                                    ls.conv);
          }
          if (ls.relu_after) relu_inplace(out);
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kSpikingConv:
        case LayerKind::kAdaptiveSpikingConv: {
          // The synaptic-current conv routes dense or sparse; the LIF
          // update stays float over the dense current (membrane state is
          // dense by nature), so the spike output is always dense.
          const Route route = effective_route(idx);
          if (route == Route::kCsr && node_quant(idx) == nullptr &&
              scatter_current_route(ls.conv)) {
            // The LIF consumer needs dense current, so narrow layers
            // scatter straight into the staging tensor — same arithmetic
            // as CSR + densify (bitwise, incl. the implicit zero-bias
            // fill), minus the COO materialization and the per-site
            // bookkeeping. Wide layers keep the vectorized gather
            // reduction below.
            sparse::ConvWork work;
            sparse::sparse_conv2d_batch_into(
                sparse_value(node.parents.front()), weights_[idx],
                biases_[idx], ls.conv, conv_scratch_, &work);
            ++exec_stats_.sparse_node_runs;
            exec_stats_.sparse_macs += work.sparse_macs;
            exec_stats_.dense_macs_avoided += work.dense_macs;
          } else if (route != Route::kDense) {
            run_sparse_conv(node, idx, route);
            densify_samples(sparse_values_[idx], conv_scratch_);
            ++exec_stats_.densify_boundaries;
            // The carrier held the pre-LIF current, not this node's
            // output — invalidate it before the spikes land in `out`.
            sparse_valid_[idx] = 0;
          } else if (const auto* nq = node_quant(idx)) {
            run_quant_conv(*nq, dense_value(node.parents[0]), biases_[idx],
                           conv_scratch_);
          } else {
            conv2d_into(dense_value(node.parents[0]), weights_[idx],
                        biases_[idx], ls.conv, conv_scratch_, &workspace_);
          }
          out = lif_[idx].step(conv_scratch_);
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kFullyConnected: {
          const DenseTensor& src = dense_value(node.parents[0]);
          if (const auto* nq = node_quant(idx)) {
            out = run_quant_fc(*nq, src, biases_[idx]);
          } else {
            out = fully_connected(src, weights_[idx], biases_[idx]);
          }
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kMaxPool:
          out = max_pool(dense_value(node.parents[0]), ls.pool_kernel);
          dense_valid_[idx] = 1;
          break;
        case LayerKind::kAvgPool:
          out = avg_pool(dense_value(node.parents[0]), ls.pool_kernel);
          dense_valid_[idx] = 1;
          break;
        case LayerKind::kUpsample:
          out = upsample_nearest(dense_value(node.parents[0]),
                                 ls.upsample_factor);
          dense_valid_[idx] = 1;
          break;
        case LayerKind::kConcat: {
          const DenseTensor& a = dense_value(node.parents[0]);
          const DenseTensor& b = dense_value(node.parents[1]);
          const int h = std::min(a.shape().h, b.shape().h);
          const int w = std::min(a.shape().w, b.shape().w);
          out = concat_channels(center_crop(a, h, w), center_crop(b, h, w));
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kAdd: {
          const DenseTensor& a = dense_value(node.parents[0]);
          const DenseTensor& b = dense_value(node.parents[1]);
          const int h = std::min(a.shape().h, b.shape().h);
          const int w = std::min(a.shape().w, b.shape().w);
          out = add(center_crop(a, h, w), center_crop(b, h, w));
          dense_valid_[idx] = 1;
          break;
        }
        case LayerKind::kOutput:
          out = dense_value(node.parents[0]);
          dense_valid_[idx] = 1;
          break;
      }
      if (activation_hook_ && ls.kind != LayerKind::kInput &&
          ls.kind != LayerKind::kOutput) {
        activation_hook_(node.id, out);
      }
      if (exec_observer_ != nullptr) {
        exec_observer_->on_node(node.id, effective_route(idx), t, obs_t0,
                                exec_now_ns());
      }
    }

    const DenseTensor& step_out =
        values[static_cast<std::size_t>(outputs.front())];
    if (t == 0) {
      accumulated = step_out;
    } else {
      accumulated = add(accumulated, step_out);
    }
  }

  if (spec_.timesteps > 1) {
    const float inv = 1.0f / static_cast<float>(spec_.timesteps);
    for (float& v : accumulated.data()) v *= inv;
  }
  return accumulated;
}

double FunctionalNetwork::mean_firing_rate(int node_id) const {
  if (node_id < 0 || node_id >= static_cast<int>(lif_.size())) return 0.0;
  const auto idx = static_cast<std::size_t>(node_id);
  return is_spiking_[idx] ? lif_[idx].mean_firing_rate() : 0.0;
}

double FunctionalNetwork::network_firing_rate() const {
  double acc = 0.0;
  int count = 0;
  for (std::size_t i = 0; i < lif_.size(); ++i) {
    if (is_spiking_[i]) {
      acc += lif_[i].mean_firing_rate();
      ++count;
    }
  }
  return count > 0 ? acc / count : 0.0;
}

}  // namespace evedge::nn
