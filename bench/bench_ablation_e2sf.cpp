// E2SF ablation (DESIGN.md D1): direct COO construction vs the rejected
// alternatives the paper motivates against —
//  (1) dense event frames with dense GEMMs (the all-GPU baseline),
//  (2) dense event frames + runtime dense->sparse encode + sparse
//      kernels ("encoding and decoding overheads are prohibitive").
//
// Two measurements: *actual wall-clock* of this repository's conversion
// code (google-benchmark) and the *modeled* per-inference service time on
// the platform model.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/e2sf.hpp"
#include "core/inference_cost.hpp"
#include "events/density_profile.hpp"
#include "sched/mapping.hpp"
#include "sparse/sparse_ops.hpp"

namespace eb = evedge::bench;
namespace ec = evedge::core;
namespace ee = evedge::events;
namespace eh = evedge::hw;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace es = evedge::sparse;
namespace ss = evedge::sched;

namespace {

const ee::EventStream& shared_stream() {
  static const ee::EventStream stream = eb::make_davis_stream(
      ee::DensityProfile::indoor_flying1(), 1'000'000, 17);
  return stream;
}

/// Wall-clock: raw events -> sparse frames directly (the E2SF path).
void BM_E2sfDirect(benchmark::State& state) {
  const auto& stream = shared_stream();
  const ec::Event2SparseFrame e2sf(stream.geometry(), ec::E2sfConfig{5});
  for (auto _ : state) {
    auto frames = e2sf.convert(stream.slice(0, 33'333), 0, 33'333);
    benchmark::DoNotOptimize(frames);
  }
}
BENCHMARK(BM_E2sfDirect);

/// Wall-clock: raw events -> dense frames (baseline representation).
void BM_DenseFrames(benchmark::State& state) {
  const auto& stream = shared_stream();
  for (auto _ : state) {
    auto frames = ec::dense_event_frames(stream.geometry(),
                                         stream.slice(0, 33'333), 0,
                                         33'333, 5);
    benchmark::DoNotOptimize(frames);
  }
}
BENCHMARK(BM_DenseFrames);

/// Wall-clock: dense frames -> COO (the encode overhead E2SF removes).
void BM_DenseThenEncode(benchmark::State& state) {
  const auto& stream = shared_stream();
  const auto dense = ec::dense_event_frames(
      stream.geometry(), stream.slice(0, 33'333), 0, 33'333, 5);
  for (auto _ : state) {
    std::size_t scanned = 0;
    for (const auto& frame : dense) {
      auto channels = es::dense_to_channels(frame, &scanned);
      benchmark::DoNotOptimize(channels);
    }
    benchmark::DoNotOptimize(scanned);
  }
}
BENCHMARK(BM_DenseThenEncode);

void print_modeled_comparison() {
  eb::print_header(
      "E2SF ablation D1 (modeled per-inference service, SpikeFlowNet)");
  const auto platform = eh::xavier_agx();
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::full_scale());
  const auto densities = ec::measure_activation_densities(
      en::build_network(en::NetworkId::kSpikeFlowNet, eb::bench_scale()), 7);
  const auto mapping =
      ss::uniform_candidate({spec}, platform.first_pe(eh::PeKind::kGpu),
                            eq::Precision::kFp32)
          .tasks.front();

  ec::InferenceCostOptions dense_opts;          // dense frames, dense GEMMs
  ec::InferenceCostOptions e2sf_opts;           // direct sparse frames
  e2sf_opts.use_sparse_routes = true;
  ec::InferenceCostOptions encode_opts = e2sf_opts;  // dense -> encode -> sparse
  encode_opts.charge_encode_overhead = true;

  const double density = 0.02;
  const double dense_us =
      ec::estimate_inference(spec, mapping, platform, densities, density,
                             dense_opts)
          .latency_us;
  const double e2sf_us =
      ec::estimate_inference(spec, mapping, platform, densities, density,
                             e2sf_opts)
          .latency_us;
  const double encode_us =
      ec::estimate_inference(spec, mapping, platform, densities, density,
                             encode_opts)
          .latency_us;
  std::printf(
      "dense frames + dense GEMMs     : %8.0f us (all-GPU baseline)\n"
      "dense frames + encode + sparse : %8.0f us (rejected alternative)\n"
      "E2SF direct sparse frames      : %8.0f us (%.2fx vs baseline)\n",
      dense_us, encode_us, e2sf_us, dense_us / e2sf_us);
  std::printf(
      "shape: the encode overhead eats most of the sparse gain — the "
      "paper's motivation for direct conversion.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_modeled_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
