#include "serve/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/batch_executor.hpp"

namespace evedge::serve {

using sparse::DenseTensor;
using sparse::TensorShape;

namespace {

/// Batch-1 probe copies of sample 0 (the planner calibrates on batch-1
/// inputs; DSFA merges within a density band, so one sample's densities
/// represent the batch — the BatchExecutor warmup convention).
[[nodiscard]] std::vector<DenseTensor> probe_of_sample0(
    const std::vector<DenseTensor>& steps) {
  std::vector<DenseTensor> probe(steps.size());
  for (std::size_t t = 0; t < steps.size(); ++t) {
    sparse::copy_sample(steps[t], 0, probe[t]);
  }
  return probe;
}

}  // namespace

ServeWorker::ServeWorker(int worker_id,
                         const nn::FunctionalNetwork& prototype,
                         WorkerConfig config)
    : config_(std::move(config)), net_(prototype.clone()) {
  if (config_.recalibration_band < 1.0) {
    throw std::invalid_argument(
        "ServeWorker: recalibration band must be >= 1");
  }
  const nn::NetworkSpec& spec = net_.spec();
  const auto input_ids = spec.graph.input_ids();
  event_shape_ = spec.graph.node(input_ids.front()).spec.out_shape;
  needs_image_ = input_ids.size() > 1;
  if (needs_image_) image_ = core::make_reference_image(spec);
  stats_.worker_id = worker_id;
}

void ServeWorker::calibrate_from(const std::vector<DenseTensor>& steps) {
  const std::vector<DenseTensor> probe = probe_of_sample0(steps);
  // Calibration runs dense warmup probes through a hook; uninstall the
  // live plan first so the swap is atomic from the engine's view.
  net_.set_execution_plan(nullptr);
  plan_ = nn::ExecutionPlanner::calibrate(
      net_, probe, needs_image_ ? &image_ : nullptr, config_.planner);
  net_.set_execution_plan(&plan_);
  plan_ready_ = true;
  stats_.plan_sparse_nodes = plan_.sparse_node_count();
  stats_.plan_probe_density = plan_.probe_input_density;
}

void ServeWorker::process_batch(const std::vector<ReadyFrame>& batch,
                                const ResultSink& sink) {
  if (batch.empty()) {
    throw std::invalid_argument("ServeWorker: empty batch");
  }
  const nn::NetworkSpec& spec = net_.spec();
  frames_.clear();
  frames_.reserve(batch.size());
  for (const ReadyFrame& ready : batch) frames_.push_back(ready.frame);
  core::frames_to_event_steps(frames_, event_shape_, spec.timesteps, steps_);

  if (config_.use_planner) {
    if (!plan_ready_) {
      calibrate_from(steps_);
      ++stats_.calibrations;
    } else if (config_.recalibrate_on_drift) {
      // The live density signal: nonzero fraction of the adapted event
      // tensor, the same post-E2SF quantity calibrate() recorded as
      // probe_input_density (DSFA's recent_density() EMA rides along in
      // ReadyFrame::ingress_density for sensor-scale telemetry).
      const double live_density = steps_.front().density();
      if (!plan_.density_in_band(live_density,
                                 config_.recalibration_band)) {
        calibrate_from(steps_);
        ++stats_.recalibrations;
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const DenseTensor out =
      net_.run_batched(steps_, needs_image_ ? &image_ : nullptr);
  const auto t1 = std::chrono::steady_clock::now();
  stats_.busy_ms +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  ++stats_.batches;
  stats_.samples += batch.size();

  for (std::size_t n = 0; n < batch.size(); ++n) {
    const double latency_us =
        std::chrono::duration<double, std::micro>(
            t1 - batch[n].enqueue_tp).count();
    sink(batch[n], out, static_cast<int>(n), latency_us);
  }
}

void ServeWorker::serve(FrameQueue& queue, const ResultSink& sink) {
  BatchCollator collator(config_.collator);
  std::vector<ReadyFrame> batch;
  while (collator.collect(queue, batch)) {
    process_batch(batch, sink);
  }
}

ServeWorkerPool::ServeWorkerPool(const nn::FunctionalNetwork& prototype,
                                 int n_workers,
                                 const WorkerConfig& config) {
  const int count = std::max(1, n_workers);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<ServeWorker>(i, prototype, config));
  }
}

void ServeWorkerPool::run(FrameQueue& queue, const ResultSink& sink) {
  // A throw on a worker thread must not std::terminate the process:
  // the first exception wins, the queue is closed so every sibling
  // drains out, and the error is rethrown on the joining thread
  // (mirroring core::parallel_for's contract).
  std::exception_ptr error;
  std::mutex error_mutex;
  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (const std::unique_ptr<ServeWorker>& worker : workers_) {
    threads.emplace_back([&queue, &sink, &error, &error_mutex,
                          w = worker.get()] {
      try {
        w->serve(queue, sink);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        queue.close();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace evedge::serve
