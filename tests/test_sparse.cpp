// Unit and property tests for the sparse substrate: dense tensors, COO
// channels, sparse frames and the sparse convolution kernels (validated
// against the dense reference in evedge::nn via test_nn.cpp; here we pin
// the algebraic invariants).

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>
#include <tuple>
#include <utility>

#include "sparse/coo.hpp"
#include "sparse/sparse_frame.hpp"
#include "sparse/sparse_ops.hpp"
#include "sparse/tensor.hpp"

namespace es = evedge::sparse;

// ----------------------------------------------------------- DenseTensor

TEST(DenseTensor, ShapeAndIndexing) {
  es::DenseTensor t(es::TensorShape{2, 3, 4, 5}, 1.5f);
  EXPECT_EQ(t.size(), 120u);
  EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), 1.5f);
  t.at(1, 2, 3, 4) = -2.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), -2.0f);
  EXPECT_THROW((void)t.at(2, 0, 0, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 3, 0, 0), std::out_of_range);
}

TEST(DenseTensor, RejectsBadShape) {
  EXPECT_THROW(es::DenseTensor(es::TensorShape{0, 1, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(es::DenseTensor(es::TensorShape{1, -2, 1, 1}),
               std::invalid_argument);
}

TEST(DenseTensor, DensityCountsNonzeros) {
  es::DenseTensor t(es::TensorShape{1, 1, 2, 2});
  EXPECT_DOUBLE_EQ(t.density(), 0.0);
  t.at(0, 0, 0, 0) = 3.0f;
  t.at(0, 0, 1, 1) = -1.0f;
  EXPECT_DOUBLE_EQ(t.density(), 0.5);
}

TEST(DenseTensor, RandomFillDeterministic) {
  es::DenseTensor a(es::TensorShape{1, 2, 3, 3});
  es::DenseTensor b(es::TensorShape{1, 2, 3, 3});
  a.fill_random(99);
  b.fill_random(99);
  EXPECT_FLOAT_EQ(es::max_abs_diff(a, b), 0.0f);
  b.fill_random(100);
  EXPECT_GT(es::max_abs_diff(a, b), 0.0f);
}

TEST(DenseTensor, ErrorMetrics) {
  es::DenseTensor a(es::TensorShape{1, 1, 1, 4});
  es::DenseTensor b(es::TensorShape{1, 1, 1, 4});
  for (int i = 0; i < 4; ++i) {
    a.at(0, 0, 0, i) = static_cast<float>(i);
    b.at(0, 0, 0, i) = static_cast<float>(i) + 1.0f;
  }
  EXPECT_FLOAT_EQ(es::max_abs_diff(a, b), 1.0f);
  EXPECT_DOUBLE_EQ(es::mean_abs_diff(a, b), 1.0);
}

// ------------------------------------------------------------ CooChannel

TEST(CooChannel, FromEntriesSortsAndAccumulates) {
  auto ch = es::CooChannel::from_entries(
      4, 4,
      {{3, 3, 1.0f}, {0, 1, 2.0f}, {3, 3, 2.0f}, {1, 0, -1.0f}});
  EXPECT_EQ(ch.nnz(), 3u);
  EXPECT_FLOAT_EQ(ch.at(3, 3), 3.0f);
  EXPECT_FLOAT_EQ(ch.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(ch.at(1, 0), -1.0f);
  EXPECT_FLOAT_EQ(ch.at(2, 2), 0.0f);
  EXPECT_NO_THROW(ch.validate());
}

TEST(CooChannel, CancellingEntriesVanish) {
  auto ch = es::CooChannel::from_entries(2, 2,
                                         {{0, 0, 1.0f}, {0, 0, -1.0f}});
  EXPECT_EQ(ch.nnz(), 0u);
}

TEST(CooChannel, AccumulateInsertsAndErases) {
  es::CooChannel ch(4, 4);
  ch.accumulate(1, 1, 2.0f);
  ch.accumulate(1, 1, 3.0f);
  EXPECT_FLOAT_EQ(ch.at(1, 1), 5.0f);
  ch.accumulate(1, 1, -5.0f);
  EXPECT_EQ(ch.nnz(), 0u);
  EXPECT_THROW(ch.accumulate(4, 0, 1.0f), std::out_of_range);
}

TEST(CooChannel, AddIsUnionWithSum) {
  auto a = es::CooChannel::from_entries(3, 3, {{0, 0, 1.0f}, {1, 1, 2.0f}});
  auto b = es::CooChannel::from_entries(3, 3, {{1, 1, 3.0f}, {2, 2, 4.0f}});
  auto c = es::add(a, b);
  EXPECT_EQ(c.nnz(), 3u);
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 5.0f);
  EXPECT_FLOAT_EQ(c.at(2, 2), 4.0f);
  EXPECT_NO_THROW(c.validate());
}

TEST(CooChannel, AddValueSumIsLinear) {
  std::mt19937_64 rng(4);
  std::uniform_int_distribution<int> coord(0, 15);
  std::uniform_real_distribution<float> val(-2.0f, 2.0f);
  std::vector<es::CooEntry> ea, eb;
  for (int i = 0; i < 60; ++i) {
    ea.push_back({coord(rng), coord(rng), val(rng)});
    eb.push_back({coord(rng), coord(rng), val(rng)});
  }
  auto a = es::CooChannel::from_entries(16, 16, ea);
  auto b = es::CooChannel::from_entries(16, 16, eb);
  auto c = es::add(a, b, 2.0f);
  EXPECT_NEAR(c.value_sum(), a.value_sum() + 2.0 * b.value_sum(), 1e-4);
}

TEST(CooChannel, ScaleMultipliesValues) {
  auto a = es::CooChannel::from_entries(2, 2, {{0, 0, 2.0f}, {1, 1, -4.0f}});
  auto s = es::scale(a, 0.5f);
  EXPECT_FLOAT_EQ(s.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), -2.0f);
  auto z = es::scale(a, 0.0f);
  EXPECT_EQ(z.nnz(), 0u);
}

// ----------------------------------------------------------- SparseFrame

namespace {

es::SparseFrame make_frame(int h, int w, std::uint64_t seed, int nnz) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> row(0, h - 1);
  std::uniform_int_distribution<int> col(0, w - 1);
  es::SparseFrame f(h, w);
  for (int i = 0; i < nnz; ++i) {
    if (i % 2 == 0) {
      f.positive().accumulate(row(rng), col(rng), 1.0f);
    } else {
      f.negative().accumulate(row(rng), col(rng), 1.0f);
    }
  }
  f.t_start = 0;
  f.t_end = 1000;
  f.source_events = nnz;
  return f;
}

}  // namespace

TEST(SparseFrame, DenseRoundTrip) {
  const auto f = make_frame(12, 10, 3, 40);
  const auto dense = f.to_dense();
  const auto back = es::SparseFrame::from_dense(dense);
  EXPECT_EQ(back.nnz(), f.nnz());
  EXPECT_FLOAT_EQ(es::max_abs_diff(back.to_dense(), dense), 0.0f);
}

TEST(SparseFrame, MergeAddConservesEventMass) {
  const auto a = make_frame(8, 8, 1, 20);
  const auto b = make_frame(8, 8, 2, 30);
  const auto merged = es::merge_frames({a, b}, es::MergeMode::kAdd);
  EXPECT_NEAR(merged.event_mass(), a.event_mass() + b.event_mass(), 1e-5);
  EXPECT_EQ(merged.source_events, a.source_events + b.source_events);
}

TEST(SparseFrame, MergeAverageHalvesTwoEqualFrames) {
  const auto a = make_frame(8, 8, 5, 24);
  const auto merged = es::merge_frames({a, a}, es::MergeMode::kAverage);
  EXPECT_NEAR(merged.event_mass(), a.event_mass(), 1e-5);
  EXPECT_EQ(merged.nnz(), a.nnz());
}

TEST(SparseFrame, MergeSpansUnionOfTimeRanges) {
  auto a = make_frame(8, 8, 1, 10);
  a.t_start = 100;
  a.t_end = 200;
  auto b = make_frame(8, 8, 2, 10);
  b.t_start = 250;
  b.t_end = 300;
  const auto merged = es::merge_frames({a, b}, es::MergeMode::kAdd);
  EXPECT_EQ(merged.t_start, 100);
  EXPECT_EQ(merged.t_end, 300);
}

TEST(SparseFrame, MergeRejectsBatchModeAndEmpty) {
  EXPECT_THROW((void)es::merge_frames({}, es::MergeMode::kAdd),
               std::invalid_argument);
  const auto a = make_frame(4, 4, 1, 4);
  EXPECT_THROW((void)es::merge_frames({a}, es::MergeMode::kBatch),
               std::invalid_argument);
}

TEST(SparseFrame, BatchToDenseStacksFrames) {
  const auto a = make_frame(6, 6, 1, 12);
  const auto b = make_frame(6, 6, 2, 15);
  const auto batch = es::batch_to_dense({a, b});
  EXPECT_EQ(batch.shape().n, 2);
  EXPECT_EQ(batch.shape().c, 2);
  // slice 0 equals a, slice 1 equals b
  const auto da = a.to_dense();
  const auto db = b.to_dense();
  float diff = 0.0f;
  for (int c = 0; c < 2; ++c) {
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 6; ++x) {
        diff = std::max(diff,
                        std::abs(batch.at(0, c, y, x) - da.at(0, c, y, x)));
        diff = std::max(diff,
                        std::abs(batch.at(1, c, y, x) - db.at(0, c, y, x)));
      }
    }
  }
  EXPECT_FLOAT_EQ(diff, 0.0f);
}

TEST(SparseFrame, DensityChangeIsRelative) {
  const auto a = make_frame(10, 10, 1, 10);
  auto b = make_frame(10, 10, 2, 10);
  EXPECT_NEAR(es::density_change(a, a), 0.0, 1e-12);
  EXPECT_GE(es::density_change(b, a), 0.0);
}

// ------------------------------------------------------------ sparse ops

TEST(SparseOps, ConvOutExtent) {
  EXPECT_EQ(es::conv_out_extent(346, 3, 2, 1), 173);
  EXPECT_EQ(es::conv_out_extent(8, 3, 1, 1), 8);
  EXPECT_THROW((void)es::conv_out_extent(2, 5, 1, 0), std::invalid_argument);
}

TEST(SparseOps, SparseConvCostProportionalToNnz) {
  const es::Conv2dSpec spec{2, 8, 3, 1, 1};
  es::DenseTensor w(es::TensorShape{8, 2, 3, 3});
  w.fill_random(7);
  const auto sparse_in = make_frame(16, 16, 9, 8);
  const auto denser_in = make_frame(16, 16, 10, 64);

  es::ConvWork work_sparse, work_dense;
  std::vector<es::CooChannel> ch1{sparse_in.positive(), sparse_in.negative()};
  std::vector<es::CooChannel> ch2{denser_in.positive(),
                                  denser_in.negative()};
  (void)es::sparse_conv2d(ch1, w, {}, spec, &work_sparse);
  (void)es::sparse_conv2d(ch2, w, {}, spec, &work_dense);
  EXPECT_LT(work_sparse.sparse_macs, work_dense.sparse_macs);
  EXPECT_EQ(work_sparse.dense_macs, work_dense.dense_macs);
  // Sparse cost bounded by nnz * Cout * k * k.
  EXPECT_LE(work_sparse.sparse_macs, work_sparse.nnz_in * 8u * 9u);
}

TEST(SparseOps, EmptyInputGivesBiasOnlyOutput) {
  const es::Conv2dSpec spec{2, 4, 3, 1, 1};
  es::DenseTensor w(es::TensorShape{4, 2, 3, 3});
  w.fill_random(3);
  const std::vector<float> bias{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<es::CooChannel> empty{es::CooChannel(8, 8),
                                    es::CooChannel(8, 8)};
  const auto out = es::sparse_conv2d(empty, w, bias, spec);
  for (int c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(out.at(0, c, 4, 4), bias[static_cast<std::size_t>(c)]);
  }
}

TEST(SparseOps, SubmanifoldOutputConfinedToActiveSites) {
  const es::Conv2dSpec spec{2, 4, 3, 1, 1};
  es::DenseTensor w(es::TensorShape{4, 2, 3, 3});
  w.fill_random(11);
  const auto frame = make_frame(12, 12, 13, 10);
  std::vector<es::CooChannel> in{frame.positive(), frame.negative()};
  const auto out = es::submanifold_conv2d(in, w, {}, spec);
  ASSERT_EQ(out.size(), 4u);

  // Union of input active sites.
  std::set<std::pair<int, int>> active;
  for (const auto& ch : in) {
    for (const auto& e : ch.entries()) active.insert({e.row, e.col});
  }
  for (const auto& ch : out) {
    for (const auto& e : ch.entries()) {
      EXPECT_TRUE(active.contains({e.row, e.col}))
          << "output at inactive site (" << e.row << "," << e.col << ")";
    }
  }
}

TEST(SparseOps, SubmanifoldRejectsStride2) {
  const es::Conv2dSpec spec{2, 4, 3, 2, 1};
  es::DenseTensor w(es::TensorShape{4, 2, 3, 3});
  std::vector<es::CooChannel> in{es::CooChannel(8, 8), es::CooChannel(8, 8)};
  EXPECT_THROW((void)es::submanifold_conv2d(in, w, {}, spec),
               std::invalid_argument);
}

TEST(SparseOps, DenseChannelRoundTrip) {
  es::DenseTensor t(es::TensorShape{1, 3, 6, 5});
  t.fill_random(21);
  // Sparsify: zero out most entries.
  int k = 0;
  for (float& v : t.data()) {
    if (k++ % 4 != 0) v = 0.0f;
  }
  std::size_t scanned = 0;
  const auto channels = es::dense_to_channels(t, &scanned);
  EXPECT_EQ(scanned, t.size());
  const auto back = es::channels_to_dense(channels);
  EXPECT_FLOAT_EQ(es::max_abs_diff(back, t), 0.0f);
}

// Property sweep: sparse conv linearity in the input (conv(a+b) =
// conv(a) + conv(b) for bias-free convs) across kernel/stride configs.
class SparseConvProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SparseConvProperty, LinearInInput) {
  const auto [kernel, stride, padding] = GetParam();
  const es::Conv2dSpec spec{2, 3, kernel, stride, padding};
  es::DenseTensor w(es::TensorShape{3, 2, kernel, kernel});
  w.fill_random(31);
  const auto fa = make_frame(14, 14, 41, 12);
  const auto fb = make_frame(14, 14, 42, 18);
  std::vector<es::CooChannel> a{fa.positive(), fa.negative()};
  std::vector<es::CooChannel> b{fb.positive(), fb.negative()};
  std::vector<es::CooChannel> sum{es::add(fa.positive(), fb.positive()),
                                  es::add(fa.negative(), fb.negative())};
  const auto ya = es::sparse_conv2d(a, w, {}, spec);
  const auto yb = es::sparse_conv2d(b, w, {}, spec);
  const auto ysum = es::sparse_conv2d(sum, w, {}, spec);
  es::DenseTensor yab = ya;
  for (std::size_t i = 0; i < yab.size(); ++i) {
    yab.data()[i] += yb.data()[i];
  }
  EXPECT_LT(es::max_abs_diff(ysum, yab), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, SparseConvProperty,
    ::testing::Values(std::make_tuple(1, 1, 0), std::make_tuple(3, 1, 1),
                      std::make_tuple(3, 2, 1), std::make_tuple(5, 1, 2),
                      std::make_tuple(5, 2, 2), std::make_tuple(7, 4, 3)));
