#include "hw/energy_model.hpp"

#include <stdexcept>

namespace evedge::hw {

EnergyAccumulator::EnergyAccumulator(const Platform& platform)
    : platform_(&platform),
      busy_us_per_pe_(platform.pes.size(), 0.0) {}

void EnergyAccumulator::add_busy(int pe_id, Precision precision,
                                 double duration_us) {
  if (duration_us < 0.0) {
    throw std::invalid_argument("busy duration must be >= 0");
  }
  const ProcessingElement& pe = platform_->pe(pe_id);
  if (!pe.supports(precision)) {
    throw std::invalid_argument(pe.name + " does not support " +
                                quant::to_string(precision));
  }
  busy_us_per_pe_[static_cast<std::size_t>(pe_id)] += duration_us;
  // W * us = uJ; /1000 -> mJ.
  busy_mj_ += pe.active_power(precision) * duration_us / 1000.0;
}

void EnergyAccumulator::add_transfer(double bytes) {
  if (bytes < 0.0) throw std::invalid_argument("bytes must be >= 0");
  // pJ -> mJ: 1e-9.
  transfer_mj_ += bytes * kTransferEnergyPjPerByte * 1e-9;
}

double EnergyAccumulator::busy_us(int pe_id) const {
  (void)platform_->pe(pe_id);
  return busy_us_per_pe_[static_cast<std::size_t>(pe_id)];
}

double EnergyAccumulator::total_mj(double makespan_us) const {
  if (makespan_us < 0.0) {
    throw std::invalid_argument("makespan must be >= 0");
  }
  double idle_mj = 0.0;
  for (std::size_t i = 0; i < platform_->pes.size(); ++i) {
    const double idle_us =
        std::max(0.0, makespan_us - busy_us_per_pe_[i]);
    idle_mj += platform_->pes[i].idle_power_w * idle_us / 1000.0;
  }
  return busy_mj_ + transfer_mj_ + idle_mj;
}

}  // namespace evedge::hw
