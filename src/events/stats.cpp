#include "events/stats.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace evedge::events {

std::vector<DensitySample> temporal_density_trace(const EventStream& stream,
                                                  TimeUs window_us) {
  if (window_us <= 0) {
    throw std::invalid_argument("temporal_density_trace: window must be > 0");
  }
  std::vector<DensitySample> trace;
  if (stream.empty()) return trace;
  const TimeUs t0 = stream.t_begin();
  const TimeUs t1 = stream.t_end();
  for (TimeUs w = t0; w <= t1; w += window_us) {
    DensitySample s;
    s.window_start = w;
    s.window_end = w + window_us;
    s.event_count = stream.count_in(w, w + window_us);
    s.events_per_second = static_cast<double>(s.event_count) /
                          (static_cast<double>(window_us) / 1e6);
    trace.push_back(s);
  }
  return trace;
}

double frame_fill_ratio(const EventStream& stream, TimeUs t0, TimeUs t1) {
  const auto events = stream.slice(t0, t1);
  std::unordered_set<std::int64_t> active;
  active.reserve(events.size());
  const auto w = static_cast<std::int64_t>(stream.geometry().width);
  for (const Event& e : events) {
    active.insert(static_cast<std::int64_t>(e.y) * w + e.x);
  }
  return static_cast<double>(active.size()) /
         static_cast<double>(stream.geometry().pixel_count());
}

double mean_bin_fill_ratio(const EventStream& stream, const FrameClock& clock,
                           int n_bins) {
  if (n_bins <= 0) {
    throw std::invalid_argument("mean_bin_fill_ratio: n_bins must be > 0");
  }
  if (clock.interval_count() == 0) {
    throw std::invalid_argument("mean_bin_fill_ratio: empty frame clock");
  }
  double acc = 0.0;
  std::size_t bins = 0;
  for (std::size_t i = 0; i + 1 < clock.timestamps.size(); ++i) {
    const TimeUs ts = clock.timestamps[i];
    const TimeUs te = clock.timestamps[i + 1];
    const double bin_span =
        static_cast<double>(te - ts) / static_cast<double>(n_bins);
    for (int b = 0; b < n_bins; ++b) {
      const auto b0 = ts + static_cast<TimeUs>(
                               std::llround(static_cast<double>(b) * bin_span));
      const auto b1 = ts + static_cast<TimeUs>(std::llround(
                               static_cast<double>(b + 1) * bin_span));
      acc += frame_fill_ratio(stream, b0, b1);
      ++bins;
    }
  }
  return acc / static_cast<double>(bins);
}

DensitySummary summarize(const std::vector<DensitySample>& trace) {
  DensitySummary s;
  if (trace.empty()) return s;
  double sum = 0.0;
  for (const DensitySample& d : trace) {
    sum += d.events_per_second;
    s.peak_rate = std::max(s.peak_rate, d.events_per_second);
  }
  s.mean_rate = sum / static_cast<double>(trace.size());
  double var = 0.0;
  for (const DensitySample& d : trace) {
    const double diff = d.events_per_second - s.mean_rate;
    var += diff * diff;
  }
  var /= static_cast<double>(trace.size());
  s.coefficient_of_variation =
      s.mean_rate > 0.0 ? std::sqrt(var) / s.mean_rate : 0.0;
  return s;
}

}  // namespace evedge::events
