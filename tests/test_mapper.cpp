// Tests for the Network Mapper: evolutionary search mechanics (validity,
// convergence, caching, constraint handling) and the RR / random-search
// baselines.

#include <gtest/gtest.h>

#include <set>

#include "hw/profiler.hpp"
#include "mapper/baselines.hpp"
#include "mapper/nmp.hpp"
#include "nn/zoo.hpp"

namespace eh = evedge::hw;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace em = evedge::mapper;
namespace ss = evedge::sched;

namespace {

struct Fixture {
  eh::Platform platform = eh::xavier_agx();
  std::vector<en::NetworkSpec> specs;
  std::vector<eh::TaskProfile> profiles;

  explicit Fixture(std::vector<en::NetworkId> ids) {
    for (const auto id : ids) {
      specs.push_back(en::build_network(id, en::ZooConfig::test_scale()));
    }
    profiles = eh::profile_tasks(specs, platform);
  }

  /// Cheap synthetic accuracy oracle: INT8 layers cost 0.004, FP16 layers
  /// 0.0005 (roughly the shape real sensitivity models produce).
  [[nodiscard]] em::AccuracyFn toy_accuracy() const {
    return [](int, const ss::TaskMapping& mapping) {
      double d = 0.0;
      for (const auto& node : mapping.nodes) {
        if (node.pe < 0) continue;
        if (node.precision == eq::Precision::kInt8) d += 0.004;
        if (node.precision == eq::Precision::kFp16) d += 0.0005;
      }
      return d;
    };
  }

  [[nodiscard]] em::NetworkMapper make_mapper(em::NmpConfig cfg) const {
    return em::NetworkMapper(specs, profiles, platform, toy_accuracy(), cfg);
  }
};

em::NmpConfig small_config() {
  em::NmpConfig cfg;
  cfg.population = 10;
  cfg.generations = 8;
  cfg.accuracy_threshold = 0.05;
  cfg.seed = 5;
  return cfg;
}

}  // namespace

TEST(CandidateHash, DistinguishesCandidates) {
  Fixture f({en::NetworkId::kDotie});
  auto mapper = f.make_mapper(small_config());
  const auto a = mapper.random_candidate(1);
  const auto b = mapper.random_candidate(2);
  const auto a2 = mapper.random_candidate(1);
  EXPECT_EQ(em::candidate_hash(a), em::candidate_hash(a2));
  EXPECT_NE(em::candidate_hash(a), em::candidate_hash(b));
}

TEST(RandomCandidate, AlwaysValid) {
  Fixture f({en::NetworkId::kSpikeFlowNet, en::NetworkId::kHidalgoDepth});
  auto mapper = f.make_mapper(small_config());
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto c = mapper.random_candidate(seed);
    EXPECT_NO_THROW(ss::validate_candidate(c, f.profiles, f.platform));
  }
}

TEST(RandomCandidate, FpModeNeverUsesInt8) {
  Fixture f({en::NetworkId::kEvFlowNet});
  auto cfg = small_config();
  cfg.allow_reduced_precision = false;  // Ev-Edge-NMP-FP
  auto mapper = f.make_mapper(cfg);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto c = mapper.random_candidate(seed);
    for (const auto& node : c.tasks[0].nodes) {
      if (node.pe >= 0) {
        // TensorRT convention: FP32 and FP16 are both "full precision";
        // only the quantized INT8 mode is excluded.
        EXPECT_NE(node.precision, eq::Precision::kInt8);
      }
    }
  }
}

TEST(Nmp, BestFitnessNeverIncreases) {
  Fixture f({en::NetworkId::kDotie, en::NetworkId::kAdaptiveSpikeNet});
  auto mapper = f.make_mapper(small_config());
  const auto result = mapper.run();
  ASSERT_GE(result.history.size(), 2u);
  for (std::size_t g = 1; g < result.history.size(); ++g) {
    EXPECT_LE(result.history[g].best_fitness,
              result.history[g - 1].best_fitness + 1e-9);
  }
}

TEST(Nmp, BeatsOrMatchesRoundRobinBaselines) {
  Fixture f({en::NetworkId::kDotie, en::NetworkId::kAdaptiveSpikeNet});
  auto cfg = small_config();
  cfg.population = 16;
  cfg.generations = 15;
  auto mapper = f.make_mapper(cfg);
  const auto result = mapper.run();

  const auto rr_net =
      em::rr_network_candidate(f.specs, f.profiles, f.platform);
  const auto rr_layer =
      em::rr_layer_candidate(f.specs, f.profiles, f.platform);
  const auto sched_nmp = result.best_schedule;
  const auto sched_rrn =
      ss::schedule(f.specs, f.profiles, rr_net, f.platform);
  const auto sched_rrl =
      ss::schedule(f.specs, f.profiles, rr_layer, f.platform);
  EXPECT_LE(sched_nmp.max_task_latency_us,
            sched_rrn.max_task_latency_us * 1.001);
  EXPECT_LE(sched_nmp.max_task_latency_us,
            sched_rrl.max_task_latency_us * 1.001);
}

TEST(Nmp, RespectsAccuracyConstraint) {
  Fixture f({en::NetworkId::kEvFlowNet});
  auto cfg = small_config();
  cfg.population = 14;
  cfg.generations = 12;
  // Tight threshold: only a few INT8 layers are affordable.
  cfg.accuracy_threshold = 0.01;
  auto mapper = f.make_mapper(cfg);
  const auto result = mapper.run();
  ASSERT_EQ(result.task_degradation.size(), 1u);
  EXPECT_LE(result.task_degradation[0], cfg.accuracy_threshold + 1e-9);
}

TEST(Nmp, CachingReducesEvaluations) {
  Fixture f({en::NetworkId::kDotie});
  auto cfg = small_config();
  cfg.population = 12;
  cfg.generations = 10;
  auto mapper = f.make_mapper(cfg);
  const auto result = mapper.run();
  // DOTIE has very few genes; duplicate candidates are inevitable and
  // must be served from the cache.
  EXPECT_GT(result.cache_hits, 0u);
  EXPECT_LT(result.fitness_evaluations,
            static_cast<std::size_t>(cfg.population) *
                (static_cast<std::size_t>(cfg.generations) + 1));
}

TEST(Nmp, DeterministicForSameSeed) {
  Fixture f({en::NetworkId::kDotie, en::NetworkId::kEvFlowNet});
  auto mapper_a = f.make_mapper(small_config());
  auto mapper_b = f.make_mapper(small_config());
  const auto ra = mapper_a.run();
  const auto rb = mapper_b.run();
  EXPECT_EQ(em::candidate_hash(ra.best), em::candidate_hash(rb.best));
  EXPECT_DOUBLE_EQ(ra.best_schedule.max_task_latency_us,
                   rb.best_schedule.max_task_latency_us);
}

TEST(Nmp, FpVariantSlowerButCompliant) {
  Fixture f({en::NetworkId::kEvFlowNet, en::NetworkId::kHidalgoDepth});
  auto cfg = small_config();
  cfg.population = 20;
  cfg.generations = 20;
  auto nmp = f.make_mapper(cfg);
  auto cfg_fp = cfg;
  cfg_fp.allow_reduced_precision = false;
  auto nmp_fp = f.make_mapper(cfg_fp);
  const auto r = nmp.run();
  const auto r_fp = nmp_fp.run();
  // The FP32-only search explores a strict subspace, so at matched
  // budgets it should not *meaningfully* beat the mixed-precision search
  // (§6: NMP-FP is 1.05x-1.22x slower); allow stochastic slack. Its
  // accuracy degradation is exactly 0 by construction.
  EXPECT_GE(r_fp.best_schedule.max_task_latency_us,
            r.best_schedule.max_task_latency_us * 0.90);
  // FP16 is permitted (full precision in TensorRT terms); only the
  // near-zero FP16 residual may remain, well under the threshold.
  for (const double d : r_fp.task_degradation) {
    EXPECT_LE(d, cfg.accuracy_threshold);
  }
}

// ---------------------------------------------------------------- baselines

TEST(Baselines, RrNetworkPinsWholeTasksModuloGpuFallback) {
  Fixture f({en::NetworkId::kDotie, en::NetworkId::kEvFlowNet,
             en::NetworkId::kHidalgoDepth});
  const auto c = em::rr_network_candidate(f.specs, f.profiles, f.platform);
  const int gpu = f.platform.first_pe(eh::PeKind::kGpu);
  for (std::size_t t = 0; t < c.tasks.size(); ++t) {
    std::set<int> pes;
    for (const auto& node : c.tasks[t].nodes) {
      if (node.pe >= 0) pes.insert(node.pe);
    }
    // One pinned PE per network, plus possibly the GPU for layers the
    // pinned PE cannot execute (TensorRT's DLA fallback).
    EXPECT_LE(pes.size(), 2u) << "task " << t;
    if (pes.size() == 2u) {
      EXPECT_TRUE(pes.contains(gpu)) << "task " << t;
    }
  }
  EXPECT_NO_THROW(ss::validate_candidate(c, f.profiles, f.platform));
}

TEST(Baselines, RrLayerCyclesOverAccelerators) {
  Fixture f({en::NetworkId::kEvFlowNet});
  const auto c = em::rr_layer_candidate(f.specs, f.profiles, f.platform);
  std::set<int> pes;
  for (const auto& node : c.tasks[0].nodes) {
    if (node.pe >= 0) {
      pes.insert(node.pe);
      // The host CPU is not part of the round-robin cycle.
      EXPECT_NE(f.platform.pe(node.pe).kind, eh::PeKind::kCpu);
    }
  }
  // GPU + both DLAs.
  EXPECT_EQ(pes.size(), 3u);
  EXPECT_NO_THROW(ss::validate_candidate(c, f.profiles, f.platform));
}

TEST(Baselines, WidestPrecisionPrefersFp32) {
  const auto platform = eh::xavier_agx();
  EXPECT_EQ(em::widest_precision(platform.pe(platform.first_pe(
                eh::PeKind::kGpu))),
            eq::Precision::kFp32);
  EXPECT_EQ(em::widest_precision(platform.pe(platform.first_pe(
                eh::PeKind::kDla))),
            eq::Precision::kFp16);
}

TEST(Baselines, RandomSearchImprovesOverGenerationsButTrailsNmp) {
  Fixture f({en::NetworkId::kDotie, en::NetworkId::kAdaptiveSpikeNet});
  auto cfg = small_config();
  cfg.population = 16;
  cfg.generations = 15;
  auto mapper = f.make_mapper(cfg);
  const auto nmp = mapper.run();
  const auto rs = em::random_search(mapper, cfg.population, cfg.generations,
                                    99);
  // Best-so-far is monotone.
  for (std::size_t g = 1; g < rs.history.size(); ++g) {
    EXPECT_LE(rs.history[g].best_fitness, rs.history[g - 1].best_fitness);
  }
  // NMP's evolved best should not lose to random sampling (Fig. 10b).
  EXPECT_LE(nmp.history.back().best_fitness,
            rs.best_fitness * 1.05);
}
