#include "sparse/sparse_frame.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace evedge::sparse {

SparseFrame::SparseFrame(int height, int width)
    : pos_(height, width), neg_(height, width) {}

double SparseFrame::density() const noexcept {
  const double sites = 2.0 * pos_.height() * pos_.width();
  return sites > 0.0 ? static_cast<double>(nnz()) / sites : 0.0;
}

double SparseFrame::pixel_fill_ratio() const {
  std::unordered_set<std::int64_t> active;
  active.reserve(nnz());
  const auto w = static_cast<std::int64_t>(width());
  for (const CooEntry& e : pos_.entries()) {
    active.insert(static_cast<std::int64_t>(e.row) * w + e.col);
  }
  for (const CooEntry& e : neg_.entries()) {
    active.insert(static_cast<std::int64_t>(e.row) * w + e.col);
  }
  const double total = static_cast<double>(height()) * width();
  return total > 0.0 ? static_cast<double>(active.size()) / total : 0.0;
}

DenseTensor SparseFrame::to_dense() const {
  DenseTensor out(TensorShape{1, 2, height(), width()});
  for (const CooEntry& e : pos_.entries()) {
    out.at(0, 0, e.row, e.col) = e.value;
  }
  for (const CooEntry& e : neg_.entries()) {
    out.at(0, 1, e.row, e.col) = e.value;
  }
  return out;
}

SparseFrame SparseFrame::from_dense(const DenseTensor& dense) {
  const TensorShape& s = dense.shape();
  if (s.n != 1 || s.c != 2) {
    throw std::invalid_argument("from_dense expects a [1,2,H,W] tensor");
  }
  SparseFrame frame(s.h, s.w);
  std::vector<CooEntry> pos;
  std::vector<CooEntry> neg;
  for (int y = 0; y < s.h; ++y) {
    for (int x = 0; x < s.w; ++x) {
      const float p = dense.at(0, 0, y, x);
      const float n = dense.at(0, 1, y, x);
      if (p != 0.0f) pos.push_back(CooEntry{y, x, p});
      if (n != 0.0f) neg.push_back(CooEntry{y, x, n});
    }
  }
  frame.positive() = CooChannel::from_entries(s.h, s.w, std::move(pos));
  frame.negative() = CooChannel::from_entries(s.h, s.w, std::move(neg));
  return frame;
}

void SparseFrame::validate() const {
  pos_.validate();
  neg_.validate();
  if (pos_.height() != neg_.height() || pos_.width() != neg_.width()) {
    throw std::logic_error("SparseFrame channel extent mismatch");
  }
  if (t_end < t_start) {
    throw std::logic_error("SparseFrame t_end < t_start");
  }
}

SparseFrame merge_frames(const std::vector<SparseFrame>& frames,
                         MergeMode mode) {
  if (frames.empty()) {
    throw std::invalid_argument("merge_frames: empty input");
  }
  if (mode == MergeMode::kBatch) {
    throw std::invalid_argument(
        "merge_frames: kBatch concatenates, use batch_to_dense");
  }
  SparseFrame out(frames.front().height(), frames.front().width());
  out.t_start = frames.front().t_start;
  out.t_end = frames.front().t_end;
  CooChannel pos = frames.front().positive();
  CooChannel neg = frames.front().negative();
  out.source_events = frames.front().source_events;
  out.merged_count = frames.front().merged_count;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const SparseFrame& f = frames[i];
    if (f.height() != out.height() || f.width() != out.width()) {
      throw std::invalid_argument("merge_frames: extent mismatch");
    }
    pos = add(pos, f.positive());
    neg = add(neg, f.negative());
    out.t_start = std::min(out.t_start, f.t_start);
    out.t_end = std::max(out.t_end, f.t_end);
    out.source_events += f.source_events;
    out.merged_count += f.merged_count;
  }
  if (mode == MergeMode::kAverage) {
    const float inv = 1.0f / static_cast<float>(frames.size());
    pos = scale(pos, inv);
    neg = scale(neg, inv);
  }
  out.positive() = std::move(pos);
  out.negative() = std::move(neg);
  out.bin_index = frames.front().bin_index;
  return out;
}

DenseTensor batch_to_dense(const std::vector<SparseFrame>& frames) {
  if (frames.empty()) {
    throw std::invalid_argument("batch_to_dense: empty input");
  }
  const int h = frames.front().height();
  const int w = frames.front().width();
  DenseTensor out(
      TensorShape{static_cast<int>(frames.size()), 2, h, w});
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const SparseFrame& f = frames[i];
    if (f.height() != h || f.width() != w) {
      throw std::invalid_argument("batch_to_dense: extent mismatch");
    }
    for (const CooEntry& e : f.positive().entries()) {
      out.at(static_cast<int>(i), 0, e.row, e.col) = e.value;
    }
    for (const CooEntry& e : f.negative().entries()) {
      out.at(static_cast<int>(i), 1, e.row, e.col) = e.value;
    }
  }
  return out;
}

double density_change(const SparseFrame& frame, const SparseFrame& reference,
                      double eps) {
  const double d_new = frame.density();
  const double d_ref = reference.density();
  return std::abs(d_new - d_ref) / std::max(d_ref, eps);
}

}  // namespace evedge::sparse
