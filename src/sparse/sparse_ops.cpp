#include "sparse/sparse_ops.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.hpp"

namespace evedge::sparse {

void validate_conv_spec(const Conv2dSpec& spec) {
  if (spec.in_channels <= 0 || spec.out_channels <= 0) {
    throw std::invalid_argument("conv channels must be positive");
  }
  if (spec.kernel <= 0 || spec.stride <= 0 || spec.padding < 0) {
    throw std::invalid_argument("conv kernel/stride/padding invalid");
  }
}

int conv_out_extent(int in_extent, int kernel, int stride, int padding) {
  const int numerator = in_extent + 2 * padding - kernel;
  if (numerator < 0) {
    throw std::invalid_argument("conv kernel larger than padded input");
  }
  return numerator / stride + 1;
}

namespace {

void validate_conv_inputs(std::span<const CooChannel> input,
                          const DenseTensor& weights,
                          std::span<const float> bias,
                          const Conv2dSpec& spec) {
  validate_conv_spec(spec);
  if (static_cast<int>(input.size()) != spec.in_channels) {
    throw std::invalid_argument(
        "sparse conv: channel count mismatch, got " +
        std::to_string(input.size()) + " expected " +
        std::to_string(spec.in_channels));
  }
  const TensorShape& ws = weights.shape();
  if (ws.n != spec.out_channels || ws.c != spec.in_channels ||
      ws.h != spec.kernel || ws.w != spec.kernel) {
    throw std::invalid_argument("sparse conv: weight shape mismatch");
  }
  if (!bias.empty() && static_cast<int>(bias.size()) != spec.out_channels) {
    throw std::invalid_argument("sparse conv: bias size mismatch");
  }
  for (std::size_t c = 1; c < input.size(); ++c) {
    if (input[c].height() != input[0].height() ||
        input[c].width() != input[0].width()) {
      throw std::invalid_argument("sparse conv: input extents differ");
    }
  }
}

[[nodiscard]] std::size_t dense_mac_count(const Conv2dSpec& spec, int out_h,
                                          int out_w) {
  return static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w) *
         static_cast<std::size_t>(spec.out_channels) *
         static_cast<std::size_t>(spec.in_channels) *
         static_cast<std::size_t>(spec.kernel) *
         static_cast<std::size_t>(spec.kernel);
}

}  // namespace

DenseTensor sparse_conv2d(std::span<const CooChannel> input,
                          const DenseTensor& weights,
                          std::span<const float> bias, const Conv2dSpec& spec,
                          ConvWork* work) {
  validate_conv_inputs(input, weights, bias, spec);
  const int in_h = input[0].height();
  const int in_w = input[0].width();
  const int out_h = conv_out_extent(in_h, spec.kernel, spec.stride,
                                    spec.padding);
  const int out_w = conv_out_extent(in_w, spec.kernel, spec.stride,
                                    spec.padding);

  DenseTensor out(TensorShape{1, spec.out_channels, out_h, out_w});
  const std::size_t out_plane =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
  float* o = out.raw();
  if (!bias.empty()) {
    for (int oc = 0; oc < spec.out_channels; ++oc) {
      float* row = o + static_cast<std::size_t>(oc) * out_plane;
      std::fill(row, row + out_plane, bias[static_cast<std::size_t>(oc)]);
    }
  }

  const float* w = weights.raw();
  // weights are [oc][ic][ky][kx]: fixing (ic, ky, kx) leaves a constant
  // oc-stride walk of Cin*k*k elements.
  const std::size_t w_oc_stride = weights.stride_n();

  std::size_t sparse_macs = 0;
  std::size_t nnz_in = 0;
  for (int ic = 0; ic < spec.in_channels; ++ic) {
    const CooChannel& ch = input[static_cast<std::size_t>(ic)];
    nnz_in += ch.nnz();
    const std::size_t w_ic_base = static_cast<std::size_t>(ic) *
                                  static_cast<std::size_t>(spec.kernel) *
                                  static_cast<std::size_t>(spec.kernel);
    for (const CooEntry& e : ch.entries()) {
      // Scatter: output (oy, ox) sees input (r, c) through kernel tap
      // (ky, kx) iff oy*stride + ky - padding == r (same for x).
      for (int ky = 0; ky < spec.kernel; ++ky) {
        const int oy_num = e.row + spec.padding - ky;
        if (oy_num < 0 || oy_num % spec.stride != 0) continue;
        const int oy = oy_num / spec.stride;
        if (oy >= out_h) continue;
        for (int kx = 0; kx < spec.kernel; ++kx) {
          const int ox_num = e.col + spec.padding - kx;
          if (ox_num < 0 || ox_num % spec.stride != 0) continue;
          const int ox = ox_num / spec.stride;
          if (ox >= out_w) continue;
          const std::size_t out_idx =
              static_cast<std::size_t>(oy) * static_cast<std::size_t>(out_w) +
              static_cast<std::size_t>(ox);
          const float* wp = w + w_ic_base +
                            static_cast<std::size_t>(ky) *
                                static_cast<std::size_t>(spec.kernel) +
                            static_cast<std::size_t>(kx);
          float* op = o + out_idx;
          const float v = e.value;
          for (int oc = 0; oc < spec.out_channels; ++oc) {
            *op += *wp * v;
            op += out_plane;
            wp += w_oc_stride;
          }
          sparse_macs += static_cast<std::size_t>(spec.out_channels);
        }
      }
    }
  }

  if (work != nullptr) {
    work->dense_macs += dense_mac_count(spec, out_h, out_w);
    work->sparse_macs += sparse_macs;
    work->nnz_in += nnz_in;
  }
  return out;
}

std::vector<CooChannel> submanifold_conv2d(std::span<const CooChannel> input,
                                           const DenseTensor& weights,
                                           std::span<const float> bias,
                                           const Conv2dSpec& spec,
                                           ConvWork* work) {
  validate_conv_inputs(input, weights, bias, spec);
  if (spec.stride != 1) {
    throw std::invalid_argument("submanifold conv requires stride 1");
  }
  if (conv_out_extent(input[0].height(), spec.kernel, 1, spec.padding) !=
          input[0].height() ||
      conv_out_extent(input[0].width(), spec.kernel, 1, spec.padding) !=
          input[0].width()) {
    throw std::invalid_argument(
        "submanifold conv requires same-extent output (kernel = 2*padding+1)");
  }
  const int h = input[0].height();
  const int w = input[0].width();
  const std::size_t plane =
      static_cast<std::size_t>(h) * static_cast<std::size_t>(w);

  // Active set as a flat bitmap plus per-channel dense gather rows:
  // replaces the seed's std::set union and the O(log n) CooChannel::at
  // binary search per kernel tap per channel with O(1) loads. The scratch
  // buffers are thread-local and cleaned by touched index on every call,
  // so the per-call cost scales with nnz, not with the plane extent.
  thread_local std::vector<std::uint8_t> active;
  thread_local std::vector<float> gathered;
  if (active.size() < plane) active.resize(plane, 0);
  const std::size_t gather_size =
      static_cast<std::size_t>(spec.in_channels) * plane;
  if (gathered.size() < gather_size) gathered.resize(gather_size, 0.0f);

  std::size_t nnz_in = 0;
  std::vector<std::int32_t> sites;
  for (int ic = 0; ic < spec.in_channels; ++ic) {
    const CooChannel& ch = input[static_cast<std::size_t>(ic)];
    nnz_in += ch.nnz();
    float* g = gathered.data() + static_cast<std::size_t>(ic) * plane;
    for (const CooEntry& e : ch.entries()) {
      const std::size_t idx =
          static_cast<std::size_t>(e.row) * static_cast<std::size_t>(w) +
          static_cast<std::size_t>(e.col);
      g[idx] = e.value;
      if (active[idx] == 0) {
        active[idx] = 1;
        sites.push_back(static_cast<std::int32_t>(idx));
      }
    }
  }
  // Row-major order keeps the output entries sorted.
  std::sort(sites.begin(), sites.end());

  // Per-site gather lists: the non-zero input taps each active site sees,
  // as (weight offset within one output channel's [Cin, k, k] block,
  // input value). Built once, then reused by every output channel.
  struct Tap {
    std::int32_t w_offset;
    float value;
  };
  std::vector<Tap> taps;
  taps.reserve(sites.size() * static_cast<std::size_t>(spec.in_channels) *
               static_cast<std::size_t>(spec.kernel) *
               static_cast<std::size_t>(spec.kernel));
  std::vector<std::size_t> site_ptr(sites.size() + 1, 0);
  for (std::size_t s = 0; s < sites.size(); ++s) {
    const int row = sites[s] / w;
    const int col = sites[s] % w;
    // Tap order (ic, ky, kx) matches the seed accumulation order exactly.
    for (int ic = 0; ic < spec.in_channels; ++ic) {
      const float* g = gathered.data() + static_cast<std::size_t>(ic) * plane;
      const std::int32_t w_ic_base = ic * spec.kernel * spec.kernel;
      for (int ky = 0; ky < spec.kernel; ++ky) {
        const int iy = row - spec.padding + ky;
        if (iy < 0 || iy >= h) continue;
        const float* g_row =
            g + static_cast<std::size_t>(iy) * static_cast<std::size_t>(w);
        const std::int32_t w_ky_base = w_ic_base + ky * spec.kernel;
        for (int kx = 0; kx < spec.kernel; ++kx) {
          const int ix = col - spec.padding + kx;
          if (ix < 0 || ix >= w) continue;
          const float v = g_row[ix];
          if (v != 0.0f) taps.push_back(Tap{w_ky_base + kx, v});
        }
      }
    }
    site_ptr[s + 1] = taps.size();
  }

  // Restore the scratch buffers to all-zero for the next call, touching
  // only the indices this call wrote.
  for (int ic = 0; ic < spec.in_channels; ++ic) {
    float* g = gathered.data() + static_cast<std::size_t>(ic) * plane;
    for (const CooEntry& e : input[static_cast<std::size_t>(ic)].entries()) {
      g[static_cast<std::size_t>(e.row) * static_cast<std::size_t>(w) +
        static_cast<std::size_t>(e.col)] = 0.0f;
    }
  }
  for (const std::int32_t idx : sites) {
    active[static_cast<std::size_t>(idx)] = 0;
  }

  const std::size_t sparse_macs =
      taps.size() * static_cast<std::size_t>(spec.out_channels);

  // Each output channel reduces the shared tap lists against its own
  // weight block — independent work, threaded via parallel_for. Channels
  // are processed in blocks of 4 so each tap is loaded once per block.
  std::vector<std::vector<CooEntry>> out_entries(
      static_cast<std::size_t>(spec.out_channels));
  const float* wraw = weights.raw();
  const std::size_t w_oc_stride = weights.stride_n();
  constexpr int kOcBlock = 4;
  const int oc_blocks = (spec.out_channels + kOcBlock - 1) / kOcBlock;
  core::parallel_for(0, oc_blocks, [&](int blk) {
    const int oc0 = blk * kOcBlock;
    const int oc1 = std::min(spec.out_channels, oc0 + kOcBlock);
    const int lanes = oc1 - oc0;
    const float* w_base[kOcBlock] = {};
    float b[kOcBlock] = {};
    for (int j = 0; j < lanes; ++j) {
      w_base[j] = wraw + static_cast<std::size_t>(oc0 + j) * w_oc_stride;
      b[j] = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc0 + j)];
      out_entries[static_cast<std::size_t>(oc0 + j)].reserve(sites.size());
    }
    for (std::size_t s = 0; s < sites.size(); ++s) {
      float acc[kOcBlock] = {b[0], b[1], b[2], b[3]};
      for (std::size_t t = site_ptr[s]; t < site_ptr[s + 1]; ++t) {
        const std::int32_t off = taps[t].w_offset;
        const float v = taps[t].value;
        for (int j = 0; j < lanes; ++j) acc[j] += w_base[j][off] * v;
      }
      const std::int32_t row = sites[s] / w;
      const std::int32_t col = sites[s] % w;
      for (int j = 0; j < lanes; ++j) {
        if (acc[j] != 0.0f) {
          out_entries[static_cast<std::size_t>(oc0 + j)].push_back(
              CooEntry{row, col, acc[j]});
        }
      }
    }
  });

  std::vector<CooChannel> out;
  out.reserve(static_cast<std::size_t>(spec.out_channels));
  for (auto& entries : out_entries) {
    // Entries were produced in site (row-major) order, unique and
    // non-zero — adopt them without the from_entries sort/dedup pass.
    out.push_back(CooChannel::from_sorted_entries(h, w, std::move(entries)));
  }
  if (work != nullptr) {
    work->dense_macs += dense_mac_count(spec, h, w);
    work->sparse_macs += sparse_macs;
    work->nnz_in += nnz_in;
  }
  return out;
}

std::vector<CooChannel> dense_to_channels(const DenseTensor& dense,
                                          std::size_t* scanned_elements) {
  const TensorShape& s = dense.shape();
  if (s.n != 1) {
    throw std::invalid_argument("dense_to_channels expects batch 1");
  }
  const std::size_t plane = dense.stride_c();
  const float* raw = dense.raw();
  std::vector<CooChannel> channels;
  channels.reserve(static_cast<std::size_t>(s.c));
  for (int c = 0; c < s.c; ++c) {
    const float* p = raw + static_cast<std::size_t>(c) * plane;
    // Count first so the entry vector is allocated exactly once.
    std::size_t nnz = 0;
    for (std::size_t i = 0; i < plane; ++i) {
      if (p[i] != 0.0f) ++nnz;
    }
    std::vector<CooEntry> entries;
    entries.reserve(nnz);
    for (int y = 0; y < s.h; ++y) {
      const float* row = p + static_cast<std::size_t>(y) *
                                 static_cast<std::size_t>(s.w);
      for (int x = 0; x < s.w; ++x) {
        if (row[x] != 0.0f) entries.push_back(CooEntry{y, x, row[x]});
      }
    }
    channels.push_back(CooChannel::from_entries(s.h, s.w,
                                                std::move(entries)));
  }
  if (scanned_elements != nullptr) {
    *scanned_elements += s.element_count();
  }
  return channels;
}

DenseTensor channels_to_dense(std::span<const CooChannel> channels) {
  if (channels.empty()) {
    throw std::invalid_argument("channels_to_dense: empty input");
  }
  const int h = channels[0].height();
  const int w = channels[0].width();
  DenseTensor out(
      TensorShape{1, static_cast<int>(channels.size()), h, w});
  for (std::size_t c = 0; c < channels.size(); ++c) {
    if (channels[c].height() != h || channels[c].width() != w) {
      throw std::invalid_argument("channels_to_dense: extent mismatch");
    }
    float* plane = out.raw() + c * out.stride_c();
    for (const CooEntry& e : channels[c].entries()) {
      plane[static_cast<std::size_t>(e.row) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(e.col)] = e.value;
    }
  }
  return out;
}

}  // namespace evedge::sparse
