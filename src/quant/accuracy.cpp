#include "quant/accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

#include "quant/quantizer.hpp"

namespace evedge::quant {

using sparse::DenseTensor;
using sparse::TensorShape;

std::vector<ValidationSample> make_validation_set(const nn::NetworkSpec& spec,
                                                  int n, std::uint64_t seed,
                                                  double fill) {
  if (n <= 0) throw std::invalid_argument("validation set size must be > 0");
  if (fill <= 0.0 || fill > 1.0) {
    throw std::invalid_argument("fill must be in (0, 1]");
  }
  const auto input_ids = spec.graph.input_ids();
  const TensorShape event_shape =
      spec.graph.node(input_ids.front()).spec.out_shape;
  const bool has_image = input_ids.size() > 1;

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> count(1, 3);

  std::vector<ValidationSample> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ValidationSample s;
    for (int t = 0; t < spec.timesteps; ++t) {
      DenseTensor frame(event_shape);
      for (float& v : frame.data()) {
        if (unit(rng) < fill) v = static_cast<float>(count(rng));
      }
      s.event_steps.push_back(std::move(frame));
    }
    if (has_image) {
      const TensorShape image_shape =
          spec.graph.node(input_ids.back()).spec.out_shape;
      DenseTensor img(image_shape);
      img.fill_random(rng(), 0.5f);
      for (float& v : img.data()) v = std::abs(v);
      s.image = std::move(img);
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

PrecisionMap uniform_assignment(const nn::NetworkSpec& spec,
                                Precision precision) {
  PrecisionMap map;
  for (const auto& node : spec.graph.nodes()) {
    if (nn::is_weight_layer(node.spec.kind)) map[node.id] = precision;
  }
  return map;
}

AccuracyEvaluator::AccuracyEvaluator(nn::NetworkSpec spec,
                                     std::uint64_t weight_seed,
                                     std::vector<ValidationSample> validation)
    : spec_(std::move(spec)),
      net_(spec_, weight_seed),
      validation_(std::move(validation)) {
  if (validation_.empty()) {
    throw std::invalid_argument("validation set must not be empty");
  }
  for (const auto& node : spec_.graph.nodes()) {
    if (nn::is_weight_layer(node.spec.kind)) {
      weight_nodes_.push_back(node.id);
      pristine_weights_.emplace(node.id, net_.weights(node.id));
    }
  }
  reference_.reserve(validation_.size());
  for (std::size_t i = 0; i < validation_.size(); ++i) {
    reference_.push_back(run_sample(i));
  }
}

DenseTensor AccuracyEvaluator::run_sample(std::size_t index) {
  ValidationSample& s = validation_[index];
  return net_.run(s.event_steps,
                  s.image.has_value() ? &s.image.value() : nullptr);
}

double AccuracyEvaluator::evaluate(const PrecisionMap& assignment,
                                   std::size_t subset,
                                   std::uint64_t subset_seed) {
  // Select the validation subset (paper: "inference only on a randomly
  // sampled subset of the validation set").
  std::vector<std::size_t> indices(validation_.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  if (subset > 0 && subset < indices.size()) {
    std::mt19937_64 rng(subset_seed);
    std::shuffle(indices.begin(), indices.end(), rng);
    indices.resize(subset);
  }

  // Quantize weights in place per the assignment.
  for (const auto& [node_id, precision] : assignment) {
    if (!pristine_weights_.contains(node_id)) continue;
    if (precision == Precision::kFp32) continue;
    fake_quantize(net_.weights(node_id), precision);
  }
  // Quantize activations through the engine hook.
  net_.set_activation_hook(
      [&assignment](int node_id, DenseTensor& activation) {
        const auto it = assignment.find(node_id);
        if (it != assignment.end() && it->second != Precision::kFp32) {
          fake_quantize(activation, it->second);
        }
      });

  double total = 0.0;
  for (const std::size_t i : indices) {
    const DenseTensor out = run_sample(i);
    total += metric_degradation(spec_.task, out, reference_[i]);
  }

  // Restore pristine state.
  net_.set_activation_hook(nullptr);
  for (const auto& [node_id, pristine] : pristine_weights_) {
    net_.weights(node_id) = pristine;
  }
  return total / static_cast<double>(indices.size());
}

SensitivityModel::SensitivityModel(AccuracyEvaluator& evaluator,
                                   std::size_t probe_subset,
                                   std::uint64_t subset_seed) {
  for (const int node_id : evaluator.weight_nodes()) {
    PrecisionMap probe;
    probe[node_id] = Precision::kFp16;
    fp16_[node_id] = evaluator.evaluate(probe, probe_subset, subset_seed);
    probe[node_id] = Precision::kInt8;
    int8_[node_id] = evaluator.evaluate(probe, probe_subset, subset_seed);
  }
}

double SensitivityModel::predict(const PrecisionMap& assignment) const {
  double acc = 0.0;
  for (const auto& [node_id, precision] : assignment) {
    acc += sensitivity(node_id, precision);
  }
  return acc;
}

double SensitivityModel::sensitivity(int node_id, Precision p) const {
  switch (p) {
    case Precision::kFp32:
      return 0.0;
    case Precision::kFp16: {
      const auto it = fp16_.find(node_id);
      return it != fp16_.end() ? it->second : 0.0;
    }
    case Precision::kInt8: {
      const auto it = int8_.find(node_id);
      return it != int8_.end() ? it->second : 0.0;
    }
  }
  return 0.0;
}

}  // namespace evedge::quant
