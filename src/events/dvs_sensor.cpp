#include "events/dvs_sensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace evedge::events {

DvsSensor::DvsSensor(SensorGeometry geometry, DvsConfig config)
    : geometry_(geometry), config_(config), stream_(geometry) {
  validate_geometry(geometry_);
  if (config_.contrast_threshold <= 0.0) {
    throw std::invalid_argument("contrast_threshold must be > 0");
  }
  if (config_.refractory_us < 0.0) {
    throw std::invalid_argument("refractory_us must be >= 0");
  }
  const auto n = static_cast<std::size_t>(geometry_.pixel_count());
  log_memory_.assign(n, 0.0f);
  last_event_t_.assign(n, -1e30);
}

void DvsSensor::process_frame(const IntensityFrame& frame) {
  if (frame.width != geometry_.width || frame.height != geometry_.height) {
    throw std::invalid_argument("frame extents do not match sensor geometry");
  }
  if (frame.intensity.size() !=
      static_cast<std::size_t>(geometry_.pixel_count())) {
    throw std::invalid_argument("frame intensity buffer has wrong size");
  }
  if (primed_ && frame.t <= last_frame_t_) {
    throw std::invalid_argument("frame timestamps must strictly increase");
  }

  const auto n = static_cast<std::size_t>(geometry_.pixel_count());
  if (!primed_) {
    for (std::size_t i = 0; i < n; ++i) {
      log_memory_[i] = std::log(frame.intensity[i] + config_.log_eps);
    }
    primed_ = true;
    last_frame_t_ = frame.t;
    return;
  }

  const double theta = config_.contrast_threshold;
  const double t0 = static_cast<double>(last_frame_t_);
  const double t1 = static_cast<double>(frame.t);
  const double dt = t1 - t0;

  // Events are produced pixel-by-pixel with interpolated timestamps, then
  // sorted once per frame so the output stream stays time-ordered.
  std::vector<Event> frame_events;
  for (int y = 0; y < geometry_.height; ++y) {
    for (int x = 0; x < geometry_.width; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) *
                                static_cast<std::size_t>(geometry_.width) +
                            static_cast<std::size_t>(x);
      const float log_now =
          std::log(frame.intensity[i] + config_.log_eps);
      double delta = static_cast<double>(log_now) -
                     static_cast<double>(log_memory_[i]);
      if (std::abs(delta) < theta) continue;

      const Polarity pol =
          delta > 0 ? Polarity::kPositive : Polarity::kNegative;
      const double step = delta > 0 ? theta : -theta;
      const auto n_events =
          static_cast<std::int64_t>(std::floor(std::abs(delta) / theta));
      for (std::int64_t k = 1; k <= n_events; ++k) {
        // Linear interpolation of the crossing time within [t0, t1].
        const double frac =
            std::abs(static_cast<double>(k) * theta / delta);
        const double te = t0 + frac * dt;
        if (te - last_event_t_[i] < config_.refractory_us) continue;
        last_event_t_[i] = te;
        frame_events.push_back(Event{
            static_cast<std::uint16_t>(x), static_cast<std::uint16_t>(y),
            static_cast<TimeUs>(std::llround(te)), pol});
      }
      log_memory_[i] += static_cast<float>(static_cast<double>(n_events) *
                                           step);
    }
  }

  std::stable_sort(frame_events.begin(), frame_events.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });
  for (const Event& e : frame_events) stream_.push_back(e);
  last_frame_t_ = frame.t;
}

EventStream DvsSensor::take_stream() {
  EventStream out = std::move(stream_);
  stream_ = EventStream(geometry_);
  return out;
}

}  // namespace evedge::events
