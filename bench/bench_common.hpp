#pragma once

// Shared helpers for the per-figure/table benchmark harnesses: MVSEC-like
// stream construction at DAVIS346 geometry, formatted table printing and
// the network/scale conventions used across experiments (see DESIGN.md
// section 5 for the experiment index).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "events/density_profile.hpp"
#include "events/event_stream.hpp"
#include "events/event_synth.hpp"
#include "nn/zoo.hpp"

namespace evedge::bench {

/// Best-of-N wall time of `fn` in milliseconds (one warm-up call) —
/// the shared timing primitive of the perf harnesses.
template <typename Fn>
[[nodiscard]] double time_best_ms(Fn&& fn, int reps) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// Mid-resolution functional scale used for activation-density and
/// accuracy probes in benches (full-scale functional runs are too slow
/// for a single-core harness; node ids match across scales).
[[nodiscard]] inline nn::ZooConfig bench_scale() {
  return nn::ZooConfig{64, 88, 16, 5};
}

/// MVSEC-like stream on the DAVIS346 sensor.
[[nodiscard]] inline events::EventStream make_davis_stream(
    const events::DensityProfile& profile, events::TimeUs duration_us,
    std::uint64_t seed = 42) {
  events::SynthConfig cfg;
  cfg.geometry = events::davis346();
  cfg.seed = seed;
  return events::PoissonEventSynthesizer(profile, cfg)
      .generate(0, duration_us);
}

/// Stream matching a network's input geometry (for functional accuracy).
[[nodiscard]] inline events::EventStream make_matched_stream(
    const nn::NetworkSpec& spec, const events::DensityProfile& profile,
    events::TimeUs duration_us, std::uint64_t seed = 42) {
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  events::SynthConfig cfg;
  cfg.geometry = events::SensorGeometry{shape.w, shape.h};
  cfg.seed = seed;
  return events::PoissonEventSynthesizer(profile, cfg)
      .generate(0, duration_us);
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Compact ASCII bar for series rendering.
[[nodiscard]] inline std::string bar(double value, double max_value,
                                     int width = 40) {
  const int n = max_value > 0.0
                    ? static_cast<int>(value / max_value * width + 0.5)
                    : 0;
  return std::string(static_cast<std::size_t>(std::max(0, n)), '#');
}

}  // namespace evedge::bench
