#pragma once

// Leaky Integrate-and-Fire neuron dynamics for the SNN layers of the zoo.
//
// Standard LIF update per timestep (soft reset):
//   U[t] = leak * U[t-1] + I[t]
//   S[t] = (U[t] >= v_th) ? 1 : 0
//   U[t] = U[t] - S[t] * v_th
//
// Adaptive-SpikeNet [1] learns per-channel neuronal dynamics; we model
// that as per-channel leak and threshold vectors (fixed-seed initialized
// in the zoo, standing in for learned values).

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/tensor.hpp"

namespace evedge::nn {

using sparse::DenseTensor;
using sparse::TensorShape;

/// Shared (layer-wide) LIF parameters.
struct LifParams {
  float leak = 0.85f;        ///< membrane decay per timestep, in (0, 1]
  float v_threshold = 1.0f;  ///< firing threshold, > 0
  bool soft_reset = true;    ///< subtract threshold (true) or reset to 0
};

void validate_lif(const LifParams& params);

/// Stateful LIF population over a fixed activation shape.
class LifState {
 public:
  LifState() = default;
  /// Per-channel leak/threshold vectors must be empty (use shared params)
  /// or have exactly `shape.c` entries (adaptive variant).
  LifState(TensorShape shape, LifParams params,
           std::vector<float> channel_leak = {},
           std::vector<float> channel_threshold = {});

  /// Advances one timestep with synaptic input `current`; returns the
  /// binary spike tensor (values 0 or 1).
  [[nodiscard]] DenseTensor step(const DenseTensor& current);

  /// Zeroes the membrane potential (new input sequence).
  void reset() noexcept;

  [[nodiscard]] const DenseTensor& membrane() const noexcept {
    return membrane_;
  }
  [[nodiscard]] const TensorShape& shape() const noexcept { return shape_; }

  /// Spikes emitted / sites over all steps since the last reset().
  [[nodiscard]] double mean_firing_rate() const noexcept;

 private:
  TensorShape shape_{};
  LifParams params_{};
  std::vector<float> channel_leak_;
  std::vector<float> channel_threshold_;
  DenseTensor membrane_;
  std::uint64_t steps_ = 0;
  std::uint64_t spikes_ = 0;
};

}  // namespace evedge::nn
