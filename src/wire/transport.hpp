#pragma once

// Transport: the duplex byte-pipe abstraction under the wire protocol.
// Two in-tree implementations:
//
//   TcpTransport / TcpListener  loopback-or-LAN TCP sockets with
//       poll()-based read timeouts and shutdown-safe cross-thread
//       close() — the hostile-network surface the ingress hardening is
//       tested against (via NetFaultProxy).
//   ShmRingTransport  a pair of single-producer/single-consumer byte
//       rings with atomic head/tail cursors. The ring state lives in
//       one contiguous allocation and is position-independent, so the
//       same layout drops onto a real shared-memory segment; in-tree it
//       connects sender and receiver threads allocation-free.
//
// Contract: send() delivers all n bytes or reports the link dead;
// recv_some() returns up to n bytes, 0 on timeout (link still up), -1
// on EOF/closed. close() may be called from any thread and wakes
// blocked peers. One thread sends, one thread receives per direction
// (the sessions in session.hpp obey this).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace evedge::wire {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends all `n` bytes; false = the link is dead (peer gone, closed).
  [[nodiscard]] virtual bool send(const void* data, std::size_t n) = 0;

  /// Receives up to `n` bytes, waiting at most `timeout`. Returns the
  /// byte count (> 0), 0 on timeout, -1 on EOF / closed link.
  [[nodiscard]] virtual std::ptrdiff_t recv_some(
      void* data, std::size_t n, std::chrono::milliseconds timeout) = 0;

  /// Tears the link down; safe from any thread, wakes blocked calls.
  virtual void close() = 0;

  [[nodiscard]] virtual bool closed() const = 0;
};

// ---------------------------------------------------------------- TCP

/// Listening socket on 127.0.0.1 (port 0 = ephemeral; port() tells).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accepts one connection; nullptr on timeout or closed listener.
  [[nodiscard]] std::unique_ptr<Transport> accept(
      std::chrono::milliseconds timeout);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

class TcpTransport : public Transport {
 public:
  /// Adopts a connected socket fd.
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  /// Connects to 127.0.0.1:`port`; nullptr on failure within `timeout`.
  [[nodiscard]] static std::unique_ptr<TcpTransport> connect(
      std::uint16_t port, std::chrono::milliseconds timeout);

  [[nodiscard]] bool send(const void* data, std::size_t n) override;
  [[nodiscard]] std::ptrdiff_t recv_some(
      void* data, std::size_t n,
      std::chrono::milliseconds timeout) override;
  void close() override;
  [[nodiscard]] bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  int fd_;
  std::atomic<bool> closed_{false};
};

// ------------------------------------------------------ shared-memory

/// Lock-free SPSC byte ring (one writer thread, one reader thread).
/// head_/tail_ are monotone byte counters; the ring is `capacity`
/// bytes (rounded up to a power of two).
class ShmRing {
 public:
  explicit ShmRing(std::size_t capacity);

  /// Copies up to `n` bytes in; returns bytes accepted (0 = full).
  std::size_t write_some(const void* data, std::size_t n);
  /// Copies up to `n` bytes out; returns bytes read (0 = empty).
  std::size_t read_some(void* data, std::size_t n);

  void close() noexcept { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }
  /// Bytes currently queued.
  [[nodiscard]] std::size_t readable() const noexcept;

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};  ///< total bytes written
  std::atomic<std::uint64_t> tail_{0};  ///< total bytes read
  std::atomic<bool> closed_{false};
};

/// Duplex transport over two SPSC rings. Blocking behavior is polled
/// (short sleeps), bounded by the caller's timeout.
class ShmRingTransport : public Transport {
 public:
  ShmRingTransport(std::shared_ptr<ShmRing> tx, std::shared_ptr<ShmRing> rx);

  /// A connected pair of endpoints sharing two rings of `capacity`
  /// bytes each: pair.first's tx is pair.second's rx and vice versa.
  [[nodiscard]] static std::pair<std::unique_ptr<ShmRingTransport>,
                                 std::unique_ptr<ShmRingTransport>>
  make_pair(std::size_t capacity = 1 << 16);

  [[nodiscard]] bool send(const void* data, std::size_t n) override;
  [[nodiscard]] std::ptrdiff_t recv_some(
      void* data, std::size_t n,
      std::chrono::milliseconds timeout) override;
  void close() override;
  [[nodiscard]] bool closed() const override;

 private:
  std::shared_ptr<ShmRing> tx_;
  std::shared_ptr<ShmRing> rx_;
};

}  // namespace evedge::wire
