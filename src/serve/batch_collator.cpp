#include "serve/batch_collator.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace evedge::serve {

namespace {

/// One "queue.wait" span per popped frame: enqueue_tp -> now, the
/// queue-residency lane of the trace timeline.
void trace_queue_wait(const ReadyFrame& frame) {
  if (!obs::Tracer::enabled()) return;
  obs::Tracer::span("queue", "queue.wait",
                    obs::to_trace_ns(frame.enqueue_tp), obs::now_ns(),
                    "stream", frame.stream_id, "seq", frame.seq);
}

}  // namespace

BatchCollator::BatchCollator(CollatorConfig config) : config_(config) {
  if (config_.max_batch < 1) {
    throw std::invalid_argument("BatchCollator: max_batch must be >= 1");
  }
  if (config_.max_wait_us < 0.0) {
    throw std::invalid_argument("BatchCollator: max_wait_us must be >= 0");
  }
}

bool BatchCollator::collect(FrameQueue& queue,
                            std::vector<ReadyFrame>& out,
                            int max_batch_override) {
  out.clear();
  pop_ns_.clear();
  const bool tracing = obs::Tracer::enabled();
  const int max_batch =
      max_batch_override > 0 ? max_batch_override : config_.max_batch;
  std::optional<ReadyFrame> first = queue.pop();
  if (!first.has_value()) return false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<long long>(config_.max_wait_us));
  trace_queue_wait(*first);
  if (tracing) pop_ns_.push_back(obs::now_ns());
  out.push_back(std::move(*first));
  while (static_cast<int>(out.size()) < max_batch) {
    std::optional<ReadyFrame> next = queue.pop_until(deadline);
    if (!next.has_value()) break;  // deadline, or closed and drained
    trace_queue_wait(*next);
    if (tracing) pop_ns_.push_back(obs::now_ns());
    out.push_back(std::move(*next));
  }
  // "collate.wait" lineage spans: each frame's pop -> batch ready, the
  // wait a frame pays for the batch to fill behind it.
  if (tracing && pop_ns_.size() == out.size()) {
    const std::uint64_t ready_ns = obs::now_ns();
    for (std::size_t i = 0; i < out.size(); ++i) {
      obs::Tracer::span("queue", "collate.wait", pop_ns_[i], ready_ns,
                        "stream", out[i].stream_id, "seq", out[i].seq);
    }
  }
  return true;
}

}  // namespace evedge::serve
