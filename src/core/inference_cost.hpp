#pragma once

// Per-inference cost model for the runtime pipeline: walks a network's
// graph under a given mapping and returns latency/energy for one
// (possibly batched) inference at a given input density.
//
// Sparse awareness: when `use_sparse_routes` is set (the E2SF variants),
// each layer runs the cheaper of the dense and sparse routes on its PE,
// with the layer's activation density taken from a one-time functional
// measurement scaled by the live input density (DESIGN.md section 2).
// The dense baseline additionally pays the dense->sparse encode overhead
// if it wants sparse execution — that is exactly the trade-off E2SF
// removes, exposed here for the ablation bench.

#include <vector>

#include "hw/energy_model.hpp"
#include "hw/latency_model.hpp"
#include "nn/engine.hpp"
#include "sched/mapping.hpp"

namespace evedge::core {

/// Per-node activation densities measured on the functional network
/// (fraction of non-zero activations right after each node).
struct ActivationDensityProfile {
  std::vector<double> density;  ///< indexed by node id, 1.0 default
  double measured_input_density = 0.1;  ///< density of the probe input
};

/// Runs one functional inference on a synthetic sparse input with
/// `input_fill` density and records per-node densities.
[[nodiscard]] ActivationDensityProfile measure_activation_densities(
    const nn::NetworkSpec& spec, std::uint64_t weight_seed,
    double input_fill = 0.02, std::uint64_t input_seed = 99);

/// Cold-start bridge from the analytical cost model to the engine's
/// execution planner: seeds an nn::ExecutionPlan for `net` from a cost-
/// model density probe (measure_activation_densities on a synthetic
/// sparse input) instead of live warmup traffic. Use when the engine
/// must route sparsely before any real inputs exist; a later
/// nn::ExecutionPlanner::calibrate on live inputs supersedes it. Note
/// the profile's ANN density floor (0.4) applies, so this seed is more
/// conservative than a live calibration.
[[nodiscard]] nn::ExecutionPlan seed_execution_plan(
    const nn::FunctionalNetwork& net, const ActivationDensityProfile& profile,
    const nn::PlannerOptions& options = {});

struct InferenceCost {
  double latency_us = 0.0;
  double busy_energy_mj = 0.0;  ///< PE-active + transfer energy
};

struct InferenceCostOptions {
  bool use_sparse_routes = false;  ///< E2SF on: sparse kernels available
  /// Dense baseline converting to sparse at runtime pays encode cost per
  /// sparse-routed layer (the overhead the paper calls prohibitive).
  bool charge_encode_overhead = false;
  int batch = 1;                   ///< DSFA cBatch / queue batching
};

/// Latency + busy energy of one inference of `spec` mapped by `mapping`
/// at live input density `input_density`. Layers execute sequentially in
/// topological order (single-stream inference); cross-PE edges pay the
/// unified-memory transfer cost.
[[nodiscard]] InferenceCost estimate_inference(
    const nn::NetworkSpec& spec, const sched::TaskMapping& mapping,
    const hw::Platform& platform, const ActivationDensityProfile& densities,
    double input_density, const InferenceCostOptions& options = {});

}  // namespace evedge::core
