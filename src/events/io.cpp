#include "events/io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace evedge::events {

namespace {

constexpr std::array<char, 4> kMagic = {'E', 'V', 'E', 'D'};
constexpr std::uint32_t kVersion = 1;

struct PackedEvent {
  std::uint16_t x;
  std::uint16_t y;
  std::int64_t t;
  std::uint8_t p;
};

void write_raw(std::ofstream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

void read_raw(std::ifstream& in, void* data, std::size_t size) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("event file truncated");
}

}  // namespace

void write_binary(const EventStream& stream,
                  const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open for writing: " + path.string());
  }
  write_raw(out, kMagic.data(), kMagic.size());
  write_raw(out, &kVersion, sizeof kVersion);
  const std::int32_t w = stream.geometry().width;
  const std::int32_t h = stream.geometry().height;
  const std::uint64_t n = stream.size();
  write_raw(out, &w, sizeof w);
  write_raw(out, &h, sizeof h);
  write_raw(out, &n, sizeof n);
  for (const Event& e : stream.events()) {
    PackedEvent pe{e.x, e.y, e.t, static_cast<std::uint8_t>(e.p)};
    write_raw(out, &pe.x, sizeof pe.x);
    write_raw(out, &pe.y, sizeof pe.y);
    write_raw(out, &pe.t, sizeof pe.t);
    write_raw(out, &pe.p, sizeof pe.p);
  }
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

EventStream read_binary(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open for reading: " + path.string());
  }
  std::array<char, 4> magic{};
  read_raw(in, magic.data(), magic.size());
  if (magic != kMagic) throw std::runtime_error("bad magic in event file");
  std::uint32_t version = 0;
  read_raw(in, &version, sizeof version);
  if (version != kVersion) {
    throw std::runtime_error("unsupported event file version " +
                             std::to_string(version));
  }
  std::int32_t w = 0;
  std::int32_t h = 0;
  std::uint64_t n = 0;
  read_raw(in, &w, sizeof w);
  read_raw(in, &h, sizeof h);
  read_raw(in, &n, sizeof n);
  EventStream stream(SensorGeometry{w, h});
  for (std::uint64_t i = 0; i < n; ++i) {
    PackedEvent pe{};
    read_raw(in, &pe.x, sizeof pe.x);
    read_raw(in, &pe.y, sizeof pe.y);
    read_raw(in, &pe.t, sizeof pe.t);
    read_raw(in, &pe.p, sizeof pe.p);
    if (pe.p > 1) throw std::runtime_error("bad polarity in event file");
    stream.push_back(Event{pe.x, pe.y, pe.t, static_cast<Polarity>(pe.p)});
  }
  return stream;
}

void write_csv(const EventStream& stream,
               const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open for writing: " + path.string());
  }
  out << "x,y,t_us,polarity\n";
  for (const Event& e : stream.events()) {
    out << e.x << ',' << e.y << ',' << e.t << ','
        << (e.p == Polarity::kPositive ? 1 : -1) << '\n';
  }
}

}  // namespace evedge::events
