// Serving-runtime test suite: FrameQueue policies, collator triggers,
// ingress determinism, the concurrent-vs-serial bitwise parity contract
// (drop policy disabled), drop accounting, the FunctionalNetwork clone
// contract under true thread concurrency (zoo-wide), planner drift
// re-calibration, and the hardened EVEDGE_THREADS handling — plus the
// fault-tolerance layer: deterministic fault injection, E2SF/ingress
// malformed-input validation, worker supervision (restart / retry /
// quarantine), SLO shedding, the graceful-degradation ladder, and the
// per-stream frame-accounting invariant
// (enqueued == completed + dropped + shed + failed).
//
// This suite is also the ThreadSanitizer CI target: every lock-guarded
// hand-off (queue, result sink, pool shutdown, requeue, mid-run policy
// switch, degradation monitor) is exercised under real producer/consumer
// threading here.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "core/batch_executor.hpp"
#include "core/dsfa.hpp"
#include "core/e2sf.hpp"
#include "core/parallel.hpp"
#include "events/density_profile.hpp"
#include "events/event_synth.hpp"
#include "nn/engine.hpp"
#include "nn/zoo.hpp"
#include "quant/accuracy.hpp"
#include "serve/serving_runtime.hpp"
#include "sparse/tensor.hpp"

namespace ec = evedge::core;
namespace ee = evedge::events;
namespace en = evedge::nn;
namespace eq = evedge::quant;
namespace es = evedge::sparse;
namespace ev = evedge::serve;

namespace {

/// Event stream matched to a network-input geometry (serving tests run
/// the functional nets at test scale, so the sensor matches the input).
ee::EventStream matched_stream(int h, int w, double rate_scale,
                               ee::TimeUs duration, std::uint64_t seed) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{w, h};
  cfg.seed = seed;
  cfg.blob_count = 3;
  ee::DensityProfile profile("test", 40.0 * rate_scale, {}, 10.0 * rate_scale,
                             0.4);
  return ee::PoissonEventSynthesizer(profile, cfg).generate(0, duration);
}

/// A ReadyFrame wrapping a synthetic sparse frame of roughly `fill`
/// site density at the given geometry.
ev::ReadyFrame synthetic_ready(int stream_id, std::int64_t seq, int h,
                               int w, double fill, std::uint64_t seed) {
  es::DenseTensor dense(es::TensorShape{1, 2, h, w});
  dense.fill_random(seed);
  const auto keep_every = fill > 0.0
                              ? static_cast<std::size_t>(1.0 / fill)
                              : dense.size();
  std::size_t i = 0;
  for (float& v : dense.data()) {
    if (i++ % keep_every != 0) v = 0.0f;
    v = v < 0.0f ? -v : v;  // event counts are non-negative
  }
  ev::ReadyFrame ready;
  ready.stream_id = stream_id;
  ready.seq = seq;
  ready.frame = es::SparseFrame::from_dense(dense);
  ready.enqueue_tp = std::chrono::steady_clock::now();
  return ready;
}

ev::IngressConfig test_ingress() {
  ev::IngressConfig config;
  config.frame_rate_hz = 30.0;
  config.dsfa.event_buffer_size = 6;
  config.dsfa.merge_bucket_capacity = 3;
  return config;
}

}  // namespace

// ------------------------------------------------------- EVEDGE_THREADS

TEST(ParallelThreads, ParseRejectsGarbage) {
  EXPECT_EQ(ec::parse_thread_override(nullptr), 0);
  EXPECT_EQ(ec::parse_thread_override(""), 0);
  EXPECT_EQ(ec::parse_thread_override("abc"), 0);
  EXPECT_EQ(ec::parse_thread_override("4abc"), 0);
  EXPECT_EQ(ec::parse_thread_override("0"), 0);
  EXPECT_EQ(ec::parse_thread_override("-3"), 0);
  EXPECT_EQ(ec::parse_thread_override("1e9"), 0);
  EXPECT_EQ(ec::parse_thread_override("99999999999999999999"), 0);
  EXPECT_EQ(ec::parse_thread_override("4.5"), 0);
  EXPECT_EQ(ec::parse_thread_override(" 4"), 4);  // strtol skips blanks
  EXPECT_EQ(ec::parse_thread_override("4"), 4);
  EXPECT_EQ(ec::parse_thread_override("1024"), 1024);
  EXPECT_EQ(ec::parse_thread_override("1025"), 0);  // above the cap
}

TEST(ParallelThreads, MalformedEnvFallsBackToHardware) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
  for (const char* bad : {"junk", "0", "-2", "2x", ""}) {
    ASSERT_EQ(setenv("EVEDGE_THREADS", bad, 1), 0);
    EXPECT_EQ(ec::parallel_thread_count(), fallback) << "value: " << bad;
  }
  ASSERT_EQ(setenv("EVEDGE_THREADS", "3", 1), 0);
  EXPECT_EQ(ec::parallel_thread_count(), 3);
  ASSERT_EQ(unsetenv("EVEDGE_THREADS"), 0);
  EXPECT_EQ(ec::parallel_thread_count(), fallback);
}

TEST(ParallelThreads, ProgrammaticOverrideWinsOverEnv) {
  ASSERT_EQ(setenv("EVEDGE_THREADS", "3", 1), 0);
  const int previous = ec::set_parallel_threads(2);
  EXPECT_EQ(ec::parallel_thread_count(), 2);
  ec::set_parallel_threads(previous);
  EXPECT_EQ(ec::parallel_thread_count(), 3);
  ASSERT_EQ(unsetenv("EVEDGE_THREADS"), 0);
}

// ------------------------------------------------------ DSFA density signal

TEST(DsfaDensity, RecentDensityTracksPushedFrames) {
  ec::DsfaConfig config;
  config.density_ema_alpha = 0.5;
  config.event_buffer_size = 100;  // no dispatch interference
  ec::DynamicSparseFrameAggregator dsfa(config);
  EXPECT_EQ(dsfa.recent_density(), 0.0);
  EXPECT_EQ(dsfa.density_drift(0.5), 0.0);  // no signal yet

  const auto frame_of = [](double fill, std::uint64_t seed) {
    return synthetic_ready(0, 0, 24, 32, fill, seed).frame;
  };
  const es::SparseFrame sparse = frame_of(0.02, 1);
  dsfa.push(sparse);
  EXPECT_DOUBLE_EQ(dsfa.recent_density(), sparse.density());

  // A run of much denser frames pulls the EMA toward their density.
  const es::SparseFrame dense_frame = frame_of(0.5, 2);
  for (int i = 0; i < 8; ++i) dsfa.push(dense_frame);
  EXPECT_GT(dsfa.recent_density(), 0.9 * dense_frame.density());
  EXPECT_GT(dsfa.density_drift(sparse.density()), 2.0);
}

TEST(DsfaDensity, RejectsBadAlpha) {
  ec::DsfaConfig config;
  config.density_ema_alpha = 0.0;
  EXPECT_THROW(ec::DynamicSparseFrameAggregator{config},
               std::invalid_argument);
  config.density_ema_alpha = 1.5;
  EXPECT_THROW(ec::DynamicSparseFrameAggregator{config},
               std::invalid_argument);
}

// ------------------------------------------------------------- FrameQueue

TEST(FrameQueue, FifoOrderAndDrainAfterClose) {
  ev::FrameQueue queue(8, ev::OverflowPolicy::kBlock);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(
        queue.push(synthetic_ready(0, i, 8, 8, 0.1, 7)).has_value());
  }
  queue.close();
  for (int i = 0; i < 5; ++i) {
    const auto frame = queue.pop();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->seq, i);
  }
  EXPECT_FALSE(queue.pop().has_value());  // closed and drained
  EXPECT_EQ(queue.peak_depth(), 5u);
}

TEST(FrameQueue, DropOldestDisplacesAndCounts) {
  ev::FrameQueue queue(2, ev::OverflowPolicy::kDropOldest);
  EXPECT_FALSE(queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7)).has_value());
  EXPECT_FALSE(queue.push(synthetic_ready(0, 1, 8, 8, 0.1, 7)).has_value());
  const auto displaced = queue.push(synthetic_ready(0, 2, 8, 8, 0.1, 7));
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->seq, 0);  // oldest out
  EXPECT_EQ(queue.dropped(), 1u);
  const auto next = queue.pop();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->seq, 1);
}

TEST(FrameQueue, BlockPolicyExertsBackpressure) {
  ev::FrameQueue queue(1, ev::OverflowPolicy::kBlock);
  EXPECT_FALSE(queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7)).has_value());

  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    (void)queue.push(synthetic_ready(0, 1, 8, 8, 0.1, 7));
    second_pushed.store(true);
  });
  // The producer must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_pushed.load());

  EXPECT_TRUE(queue.pop().has_value());  // frees the slot
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(queue.dropped(), 0u);
}

TEST(FrameQueue, CloseReleasesBlockedProducer) {
  ev::FrameQueue queue(1, ev::OverflowPolicy::kBlock);
  EXPECT_FALSE(queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7)).has_value());
  std::optional<ev::ReadyFrame> rejected;
  std::thread producer([&] {
    rejected = queue.push(synthetic_ready(0, 1, 8, 8, 0.1, 7));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  ASSERT_TRUE(rejected.has_value());  // returned unaccepted
  EXPECT_EQ(rejected->seq, 1);
}

// ----------------------------------------------------------- BatchCollator

TEST(BatchCollator, SizeTriggerFillsToMaxBatch) {
  ev::FrameQueue queue(16, ev::OverflowPolicy::kBlock);
  for (int i = 0; i < 7; ++i) {
    (void)queue.push(synthetic_ready(i % 3, i, 8, 8, 0.1, 7));
  }
  ev::BatchCollator collator({.max_batch = 4, .max_wait_us = 1e6});
  std::vector<ev::ReadyFrame> batch;
  ASSERT_TRUE(collator.collect(queue, batch));
  EXPECT_EQ(batch.size(), 4u);  // size-triggered, no deadline wait
  queue.close();
  ASSERT_TRUE(collator.collect(queue, batch));
  EXPECT_EQ(batch.size(), 3u);  // drains the remainder after close
  EXPECT_FALSE(collator.collect(queue, batch));
}

TEST(BatchCollator, DeadlineTriggerReturnsPartialBatch) {
  ev::FrameQueue queue(16, ev::OverflowPolicy::kBlock);
  (void)queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7));
  ev::BatchCollator collator({.max_batch = 8, .max_wait_us = 5e3});
  std::vector<ev::ReadyFrame> batch;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(collator.collect(queue, batch));
  const double waited_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_GE(waited_us, 4e3);  // held for the deadline before giving up
  queue.close();
}

// ----------------------------------------------------------- StreamIngress

TEST(StreamIngress, OfflineCollectIsDeterministicAndMatchesLiveRun) {
  const auto stream = matched_stream(32, 44, 1.0, 400'000, 11);
  const ev::IngressConfig config = test_ingress();
  const auto frames_a = ev::StreamIngress::collect_frames(stream, config);
  const auto frames_b = ev::StreamIngress::collect_frames(stream, config);
  ASSERT_FALSE(frames_a.empty());
  ASSERT_EQ(frames_a.size(), frames_b.size());
  for (std::size_t i = 0; i < frames_a.size(); ++i) {
    EXPECT_EQ(frames_a[i].nnz(), frames_b[i].nnz());
    EXPECT_EQ(frames_a[i].t_start, frames_b[i].t_start);
  }

  ev::FrameQueue queue(1024, ev::OverflowPolicy::kBlock);
  ev::StreamIngress ingress(0, stream, config, queue);
  ingress.run();
  EXPECT_EQ(ingress.stats().enqueued, frames_a.size());
  EXPECT_GT(ingress.stats().raw_frames, frames_a.size());  // DSFA merges
  EXPECT_GT(ingress.stats().last_ingress_density, 0.0);
  std::size_t drained = 0;
  queue.close();
  while (auto frame = queue.pop()) {
    EXPECT_EQ(frame->seq, static_cast<std::int64_t>(drained));
    EXPECT_EQ(frame->frame.nnz(), frames_a[drained].nnz());
    EXPECT_GT(frame->ingress_density, 0.0);
    ++drained;
  }
  EXPECT_EQ(drained, frames_a.size());
}

// ------------------------------------------- concurrent-vs-serial parity

namespace {

/// Runs the full parity contract on one network: concurrent serving
/// (block policy, capture on) must produce bitwise-identical outputs to
/// per-stream serial batch-1 execution, for every (stream, seq).
void expect_serving_parity(en::NetworkId id, bool planner) {
  const en::NetworkSpec spec =
      en::build_network(id, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;

  std::vector<ee::EventStream> streams;
  for (std::uint64_t s = 0; s < 3; ++s) {
    streams.push_back(matched_stream(shape.h, shape.w, 1.0 + 0.5 * s,
                                     300'000, 21 + s));
  }

  ev::ServeConfig config;
  config.ingress = test_ingress();
  config.n_workers = 2;
  config.capture_outputs = true;
  config.worker.use_planner = planner;
  config.worker.collator.max_batch = 4;
  ev::ServingRuntime runtime(spec, 7, config);

  const ev::ServeReport report = runtime.run(streams);
  EXPECT_EQ(report.frames_dropped, 0u);
  ASSERT_EQ(report.streams.size(), streams.size());

  std::vector<std::vector<es::SparseFrame>> frames;
  for (const ee::EventStream& stream : streams) {
    frames.push_back(ev::ServingRuntime::ingest(stream, config.ingress));
  }
  const auto serial = runtime.run_serial(frames, planner);

  std::size_t checked = 0;
  for (std::size_t s = 0; s < frames.size(); ++s) {
    ASSERT_EQ(report.streams[s].completed, frames[s].size());
    for (std::size_t i = 0; i < frames[s].size(); ++i) {
      const es::DenseTensor* served =
          runtime.output(static_cast<int>(s), static_cast<std::int64_t>(i));
      ASSERT_NE(served, nullptr) << "stream " << s << " seq " << i;
      EXPECT_EQ(es::max_abs_diff(*served, serial.outputs[s][i]), 0.0f)
          << spec.name << " stream " << s << " seq " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 6u);  // the run must have actually served frames
}

}  // namespace

TEST(ServingParity, SpikingNetworkPlannerOn) {
  expect_serving_parity(en::NetworkId::kDotie, true);
}

TEST(ServingParity, SpikingNetworkPlannerOff) {
  expect_serving_parity(en::NetworkId::kDotie, false);
}

TEST(ServingParity, HybridNetwork) {
  expect_serving_parity(en::NetworkId::kSpikeFlowNet, true);
}

TEST(ServingParity, TwoInputNetwork) {
  expect_serving_parity(en::NetworkId::kFusionFlowNet, true);
}

TEST(ServingRuntime, RejectsEmptyStreamUpFront) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  ev::ServeConfig config;
  config.ingress = test_ingress();
  ev::ServingRuntime runtime(spec, 7, config);
  // An empty stream must be rejected on the calling thread, not abort
  // the process from an ingress thread.
  std::vector<ee::EventStream> streams;
  streams.emplace_back(ee::SensorGeometry{44, 32});
  EXPECT_THROW((void)runtime.run(streams), std::invalid_argument);
  EXPECT_THROW((void)runtime.run({}), std::invalid_argument);
}

TEST(ServingRuntime, DropPolicyAccountsEveryFrame) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  std::vector<ee::EventStream> streams;
  for (std::uint64_t s = 0; s < 4; ++s) {
    streams.push_back(matched_stream(shape.h, shape.w, 2.0, 400'000, 31 + s));
  }

  ev::ServeConfig config;
  config.ingress = test_ingress();
  config.n_workers = 1;
  config.queue_capacity = 2;  // tiny: ingress outruns the single worker
  config.overflow = ev::OverflowPolicy::kDropOldest;
  config.worker.use_planner = false;
  ev::ServingRuntime runtime(spec, 7, config);
  const ev::ServeReport report = runtime.run(streams);

  std::size_t enqueued = 0;
  for (const ev::StreamServeStats& s : report.streams) {
    EXPECT_EQ(s.enqueued, s.completed + s.dropped);
    enqueued += s.enqueued;
  }
  EXPECT_EQ(report.frames_completed + report.frames_dropped, enqueued);
  EXPECT_GT(report.frames_completed, 0u);
  EXPECT_GT(report.queue_peak_depth, 0u);
}

// ----------------------------------------------------- clone concurrency

TEST(CloneContract, CloneMatchesOriginalAndIsIndependent) {
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kAdaptiveSpikeNet, en::ZooConfig::test_scale());
  en::FunctionalNetwork original(spec, 7);
  const auto samples = eq::make_validation_set(spec, 1, 99);
  const auto& steps = samples[0].event_steps;

  en::FunctionalNetwork copy = original.clone();
  const es::DenseTensor expected = original.run(steps);
  EXPECT_EQ(es::max_abs_diff(copy.run(steps), expected), 0.0f);

  // Mutating the original's weights must not leak into the clone.
  int node = -1;
  for (const en::LayerNode& n : original.spec().graph.nodes()) {
    if (en::is_weight_layer(n.spec.kind)) {
      node = n.id;
      break;
    }
  }
  ASSERT_GE(node, 0);
  for (float& w : original.weights(node).data()) w += 1.0f;
  EXPECT_NE(es::max_abs_diff(original.run(steps), expected), 0.0f);
  EXPECT_EQ(es::max_abs_diff(copy.run(steps), expected), 0.0f);
}

TEST(CloneContract, ConcurrentClonesBitMatchSerialAcrossZoo) {
  // The one-Workspace-per-worker contract the serve pool relies on: two
  // clones running the same net on separate threads produce bitwise the
  // serial batch-1 outputs, for every zoo network.
  for (const en::NetworkId id : en::table1_networks()) {
    const en::NetworkSpec spec =
        en::build_network(id, en::ZooConfig::test_scale());
    en::FunctionalNetwork prototype(spec, 7);
    const auto samples = eq::make_validation_set(spec, 2, 123);
    const auto image_of = [&](std::size_t i) {
      return samples[i].image.has_value() ? &samples[i].image.value()
                                          : nullptr;
    };

    std::vector<es::DenseTensor> serial;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      serial.push_back(
          prototype.run(samples[i].event_steps, image_of(i)));
    }

    en::FunctionalNetwork worker_a = prototype.clone();
    en::FunctionalNetwork worker_b = prototype.clone();
    es::DenseTensor out_a;
    es::DenseTensor out_b;
    std::thread ta(
        [&] { out_a = worker_a.run(samples[0].event_steps, image_of(0)); });
    std::thread tb(
        [&] { out_b = worker_b.run(samples[1].event_steps, image_of(1)); });
    ta.join();
    tb.join();
    EXPECT_EQ(es::max_abs_diff(out_a, serial[0]), 0.0f) << spec.name;
    EXPECT_EQ(es::max_abs_diff(out_b, serial[1]), 0.0f) << spec.name;
  }
}

// ------------------------------------------------- planner drift refresh

TEST(DriftRecalibration, DensityShiftUpdatesWorkerRoutes) {
  // Mid scale with paper-band thresholds: the event-input layer routes
  // sparse at ~1% fill and must fall back to dense when the live density
  // jumps far out of the calibration band.
  const en::NetworkSpec spec = en::build_network(
      en::NetworkId::kDotie, en::ZooConfig{64, 88, 16, 5, 2.0f});
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  en::FunctionalNetwork prototype(spec, 7);

  ev::WorkerConfig config;
  config.recalibration_band = 4.0;
  ev::ServeWorker worker(0, prototype, config);
  std::size_t sunk = 0;
  const ev::ResultSink sink =
      [&](const ev::ReadyFrame&, const es::DenseTensor&, int, double) {
        ++sunk;
      };

  // Warmup at ~1% fill: lazy calibration, no recalibration.
  std::vector<ev::ReadyFrame> sparse_batch;
  for (int i = 0; i < 2; ++i) {
    sparse_batch.push_back(
        synthetic_ready(0, i, shape.h, shape.w, 0.01, 41 + i));
  }
  worker.process_batch(sparse_batch, sink);
  ASSERT_NE(worker.plan(), nullptr);
  EXPECT_EQ(worker.stats().calibrations, 1u);
  EXPECT_EQ(worker.stats().recalibrations, 0u);
  const double sparse_probe = worker.stats().plan_probe_density;
  const int sparse_routes = worker.plan()->sparse_node_count();
  EXPECT_GT(sparse_routes, 0);  // the event layer routes sparse at 1%

  // Same regime again: still in band, no refresh.
  worker.process_batch(sparse_batch, sink);
  EXPECT_EQ(worker.stats().recalibrations, 0u);

  // Scene shift to ~60% fill: far outside the 4x band -> recalibrate,
  // and the dense regime must drop the sparse routes.
  std::vector<ev::ReadyFrame> dense_batch;
  for (int i = 0; i < 2; ++i) {
    dense_batch.push_back(
        synthetic_ready(0, 10 + i, shape.h, shape.w, 0.6, 51 + i));
  }
  worker.process_batch(dense_batch, sink);
  EXPECT_EQ(worker.stats().recalibrations, 1u);
  EXPECT_GT(worker.stats().plan_probe_density, 4.0 * sparse_probe);
  EXPECT_LT(worker.plan()->sparse_node_count(), sparse_routes);
  EXPECT_EQ(sunk, 6u);
}

// ------------------------------------------------------------ serve stats

TEST(ServeStats, ReservoirPercentiles) {
  ev::LatencyReservoir reservoir;
  EXPECT_EQ(reservoir.percentile_us(0.95), 0.0);
  for (int i = 1; i <= 100; ++i) reservoir.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(reservoir.percentile_us(0.0), 1.0);
  EXPECT_DOUBLE_EQ(reservoir.percentile_us(0.5), 51.0);
  EXPECT_DOUBLE_EQ(reservoir.percentile_us(1.0), 100.0);
  EXPECT_NEAR(reservoir.percentile_us(0.95), 95.0, 1.0);
  EXPECT_DOUBLE_EQ(reservoir.mean_us(), 50.5);
  EXPECT_DOUBLE_EQ(reservoir.max_us(), 100.0);
}

// ----------------------------------------------- FrameQueue edge cases

TEST(FrameQueue, PopUntilExpiredDeadlineIsNonBlocking) {
  ev::FrameQueue queue(4, ev::OverflowPolicy::kBlock);
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  // Empty queue + already-expired deadline: give up immediately.
  EXPECT_FALSE(queue.pop_until(past).has_value());
  // A queued frame must still be delivered, expired deadline or not.
  (void)queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7));
  const auto frame = queue.pop_until(past);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->seq, 0);
  queue.close();
}

TEST(FrameQueue, RequeueBypassesCapacityAndClosedFlag) {
  ev::FrameQueue queue(1, ev::OverflowPolicy::kBlock);
  EXPECT_FALSE(queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7)).has_value());
  queue.close();
  // The supervision path: a failed batch's frame goes back to the FRONT
  // even though the queue is full AND closed.
  ev::ReadyFrame retry = synthetic_ready(0, 5, 8, 8, 0.1, 7);
  retry.attempts = 1;
  queue.requeue(std::move(retry));
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.requeued(), 1u);
  const auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, 5);  // requeued frame is at the head
  EXPECT_EQ(first->attempts, 1);
  const auto second = queue.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->seq, 0);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(FrameQueue, SwitchToDropOldestReleasesBlockedProducer) {
  ev::FrameQueue queue(1, ev::OverflowPolicy::kBlock);
  EXPECT_FALSE(queue.push(synthetic_ready(0, 0, 8, 8, 0.1, 7)).has_value());
  std::optional<ev::ReadyFrame> displaced;
  std::atomic<bool> done{false};
  std::thread producer([&] {
    displaced = queue.push(synthetic_ready(0, 1, 8, 8, 0.1, 7));
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());  // blocked under kBlock
  // The degradation ladder's rung-1 side effect: the switch must wake
  // the blocked producer, which then displaces the oldest frame.
  queue.set_policy(ev::OverflowPolicy::kDropOldest);
  producer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(queue.policy(), ev::OverflowPolicy::kDropOldest);
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->seq, 0);
  EXPECT_EQ(queue.dropped(), 1u);
  const auto frame = queue.pop();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->seq, 1);
  queue.close();
}

TEST(FrameQueue, CloseRacingManyBlockedProducersReturnsEveryFrame) {
  ev::FrameQueue queue(1, ev::OverflowPolicy::kBlock);
  EXPECT_FALSE(
      queue.push(synthetic_ready(9, 100, 8, 8, 0.1, 7)).has_value());
  constexpr int kProducers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&queue, &rejected, i] {
      // Whether this thread blocks first or observes the closed flag
      // straight away, the frame must come back to its producer.
      if (queue.push(synthetic_ready(i, 1, 8, 8, 0.1, 7)).has_value()) {
        rejected.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  queue.close();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(rejected.load(), kProducers);
  EXPECT_EQ(queue.dropped(), 0u);
  EXPECT_TRUE(queue.pop().has_value());   // the one admitted frame
  EXPECT_FALSE(queue.pop().has_value());  // nothing leaked in
}

TEST(FrameQueue, DropAccountingBalancesUnderConcurrentProducers) {
  ev::FrameQueue queue(4, ev::OverflowPolicy::kDropOldest);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::atomic<std::size_t> displaced{0};
  std::atomic<std::size_t> popped{0};
  std::thread consumer([&] {
    while (queue.pop().has_value()) popped.fetch_add(1);
  });
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &displaced, p] {
      for (int j = 0; j < kPerProducer; ++j) {
        if (queue.push(synthetic_ready(p, j, 8, 8, 0.1, 7)).has_value()) {
          displaced.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.close();
  consumer.join();
  // Conservation: every pushed frame was either served or handed back
  // to a producer as a displacement — and the queue's own counter must
  // agree with what the producers saw.
  EXPECT_EQ(popped.load() + displaced.load(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(queue.dropped(), displaced.load());
}

// ------------------------------------------------- fault plan / injector

namespace {

bool specs_equal(const ev::FaultSpec& a, const ev::FaultSpec& b) {
  return a.type == b.type && a.stream_id == b.stream_id && a.seq == b.seq &&
         a.worker_id == b.worker_id && a.batch == b.batch &&
         a.delay_ms == b.delay_ms && a.corrupt == b.corrupt;
}

}  // namespace

TEST(FaultPlan, SeededIsReproducibleAndWellShaped) {
  ev::FaultPlanOptions opt;
  opt.streams = 4;
  opt.workers = 3;
  opt.frames_per_stream_hint = 20;
  opt.batches_per_worker_hint = 6;
  opt.worker_exceptions = 3;
  opt.latency_spikes = 2;
  opt.corrupt_frames = 4;
  opt.stalls = 2;
  opt.disconnects = 2;

  const ev::FaultPlan a = ev::FaultPlan::seeded(99, opt);
  const ev::FaultPlan b = ev::FaultPlan::seeded(99, opt);
  ASSERT_EQ(a.specs.size(), 13u);
  ASSERT_EQ(b.specs.size(), a.specs.size());
  for (std::size_t i = 0; i < a.specs.size(); ++i) {
    EXPECT_TRUE(specs_equal(a.specs[i], b.specs[i])) << "spec " << i;
  }

  std::set<int> disconnect_streams;
  for (const ev::FaultSpec& spec : a.specs) {
    switch (spec.type) {
      case ev::FaultType::kCorruptFrame:
      case ev::FaultType::kStreamStall:
        EXPECT_GE(spec.stream_id, 0);
        EXPECT_LT(spec.stream_id, opt.streams);
        EXPECT_GE(spec.seq, 0);
        EXPECT_LT(spec.seq, opt.frames_per_stream_hint);
        break;
      case ev::FaultType::kStreamDisconnect:
        disconnect_streams.insert(spec.stream_id);
        // Upper half of the seq space: frames flow before the cut.
        EXPECT_GE(spec.seq, opt.frames_per_stream_hint / 2);
        EXPECT_LT(spec.seq, opt.frames_per_stream_hint);
        break;
      case ev::FaultType::kWorkerException:
      case ev::FaultType::kLatencySpike:
        EXPECT_GE(spec.worker_id, 0);
        EXPECT_LT(spec.worker_id, opt.workers);
        EXPECT_GE(spec.batch, 0);
        EXPECT_LT(spec.batch, opt.batches_per_worker_hint);
        break;
    }
  }
  EXPECT_EQ(disconnect_streams.size(), 2u);  // distinct streams

  // A different seed draws a different schedule.
  const ev::FaultPlan c = ev::FaultPlan::seeded(100, opt);
  bool all_equal = c.specs.size() == a.specs.size();
  for (std::size_t i = 0; all_equal && i < a.specs.size(); ++i) {
    all_equal = specs_equal(a.specs[i], c.specs[i]);
  }
  EXPECT_FALSE(all_equal);
}

// ------------------------------------------- malformed-input validation

TEST(E2sfValidation, RejectsOutOfBoundsCoordinate) {
  const ee::SensorGeometry geom{16, 12};
  const ec::Event2SparseFrame converter(geom, ec::E2sfConfig{2});
  std::vector<ee::Event> events;
  events.push_back(ee::Event{3, 4, 100, ee::Polarity::kPositive});
  events.push_back(ee::Event{16, 0, 150, ee::Polarity::kNegative});  // x==W
  try {
    (void)converter.convert(events, 0, 1000);
    FAIL() << "expected MalformedEventError";
  } catch (const ec::MalformedEventError& e) {
    EXPECT_EQ(e.kind(), ec::MalformedEventError::Kind::kOutOfBounds);
    EXPECT_EQ(e.event_index(), 1u);
  }
}

TEST(E2sfValidation, RejectsNonMonotonicTimestamp) {
  const ee::SensorGeometry geom{16, 12};
  const ec::Event2SparseFrame converter(geom, ec::E2sfConfig{2});
  std::vector<ee::Event> events;
  events.push_back(ee::Event{1, 1, 400, ee::Polarity::kPositive});
  events.push_back(ee::Event{2, 2, 300, ee::Polarity::kPositive});  // back
  try {
    (void)converter.convert(events, 0, 1000);
    FAIL() << "expected MalformedEventError";
  } catch (const ec::MalformedEventError& e) {
    EXPECT_EQ(e.kind(),
              ec::MalformedEventError::Kind::kNonMonotonicTimestamp);
    EXPECT_EQ(e.event_index(), 1u);
  }
}

TEST(E2sfValidation, RejectsEventOutsideInterval) {
  const ee::SensorGeometry geom{16, 12};
  const ec::Event2SparseFrame converter(geom, ec::E2sfConfig{2});
  std::vector<ee::Event> events;
  events.push_back(ee::Event{1, 1, 100, ee::Polarity::kPositive});
  events.push_back(ee::Event{2, 2, 1000, ee::Polarity::kPositive});  // ==Tend
  try {
    (void)converter.convert(events, 0, 1000);
    FAIL() << "expected MalformedEventError";
  } catch (const ec::MalformedEventError& e) {
    EXPECT_EQ(e.kind(), ec::MalformedEventError::Kind::kOutsideInterval);
    EXPECT_EQ(e.event_index(), 1u);
  }
}

TEST(E2sfValidation, WellFormedWindowStillConverts) {
  const ee::SensorGeometry geom{16, 12};
  const ec::Event2SparseFrame converter(geom, ec::E2sfConfig{2});
  std::vector<ee::Event> events;
  events.push_back(ee::Event{3, 4, 100, ee::Polarity::kPositive});
  events.push_back(ee::Event{15, 11, 900, ee::Polarity::kNegative});
  const auto frames = converter.convert(events, 0, 1000);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].nnz() + frames[1].nnz(), 2);
}

TEST(IngressValidation, FrameFaultDetectionMatrix) {
  const auto base = [] { return synthetic_ready(0, 0, 8, 10, 0.2, 7).frame; };
  es::SparseFrame ok = base();
  EXPECT_EQ(ev::frame_fault_of(ok, 8, 10), ev::FrameFault::kNone);
  EXPECT_EQ(ev::frame_fault_of(ok, 16, 20),
            ev::FrameFault::kGeometryMismatch);

  ev::FaultSpec spec;
  spec.type = ev::FaultType::kCorruptFrame;

  es::SparseFrame oob = base();
  spec.corrupt = ev::CorruptKind::kOutOfBoundsCoordinate;
  ev::FaultInjector::corrupt(spec, oob);
  EXPECT_EQ(ev::frame_fault_of(oob, 8, 10),
            ev::FrameFault::kOutOfBoundsCoordinate);

  es::SparseFrame non_finite = base();
  spec.corrupt = ev::CorruptKind::kNonFiniteValue;
  ev::FaultInjector::corrupt(spec, non_finite);
  EXPECT_EQ(ev::frame_fault_of(non_finite, 8, 10),
            ev::FrameFault::kNonFiniteValue);

  es::SparseFrame bad_timing = base();
  bad_timing.t_start = 100;
  spec.corrupt = ev::CorruptKind::kBadTiming;
  ev::FaultInjector::corrupt(spec, bad_timing);
  EXPECT_EQ(ev::frame_fault_of(bad_timing, 8, 10),
            ev::FrameFault::kBadTiming);
}

// -------------------------------------------- fault-tolerant serving

TEST(FaultTolerance, CorruptFrameIsQuarantinedOthersServe) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  std::vector<ee::EventStream> streams;
  for (std::uint64_t s = 0; s < 2; ++s) {
    streams.push_back(
        matched_stream(shape.h, shape.w, 1.0 + 0.5 * s, 400'000, 81 + s));
  }

  ev::ServeConfig config;
  config.ingress = test_ingress();
  config.n_workers = 2;
  config.capture_outputs = true;
  config.worker.use_planner = false;
  config.worker.collator.max_batch = 4;
  ev::FaultSpec corrupt;
  corrupt.type = ev::FaultType::kCorruptFrame;
  corrupt.stream_id = 0;
  corrupt.seq = 1;
  corrupt.corrupt = ev::CorruptKind::kOutOfBoundsCoordinate;
  config.faults.add(corrupt);
  ev::ServingRuntime runtime(spec, 7, config);
  const ev::ServeReport report = runtime.run(streams);

  EXPECT_TRUE(report.accounting_ok());
  EXPECT_EQ(report.faults.corrupt_frames, 1u);
  EXPECT_EQ(report.frames_failed, 1u);
  ASSERT_EQ(report.streams.size(), 2u);
  EXPECT_EQ(report.streams[0].failed, 1u);
  EXPECT_EQ(report.streams[1].failed, 0u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].stream_id, 0);
  EXPECT_EQ(report.quarantined[0].seq, 1);
  EXPECT_EQ(report.quarantined[0].fault,
            ev::FrameFault::kOutOfBoundsCoordinate);
  EXPECT_EQ(runtime.output(0, 1), nullptr);

  // Every unaffected (stream, seq) is still bitwise the serial result.
  std::vector<std::vector<es::SparseFrame>> frames;
  for (const ee::EventStream& stream : streams) {
    frames.push_back(ev::ServingRuntime::ingest(stream, config.ingress));
  }
  const auto serial = runtime.run_serial(frames, false);
  for (std::size_t s = 0; s < frames.size(); ++s) {
    const std::size_t expect_completed =
        frames[s].size() - (s == 0 ? 1 : 0);
    EXPECT_EQ(report.streams[s].completed, expect_completed);
    for (std::size_t i = 0; i < frames[s].size(); ++i) {
      if (s == 0 && i == 1) continue;  // the quarantined site
      const es::DenseTensor* served =
          runtime.output(static_cast<int>(s), static_cast<std::int64_t>(i));
      ASSERT_NE(served, nullptr) << "stream " << s << " seq " << i;
      EXPECT_EQ(es::max_abs_diff(*served, serial.outputs[s][i]), 0.0f)
          << "stream " << s << " seq " << i;
    }
  }
}

TEST(FaultTolerance, WorkerCrashRetriesToFullParity) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  std::vector<ee::EventStream> streams;
  for (std::uint64_t s = 0; s < 2; ++s) {
    streams.push_back(
        matched_stream(shape.h, shape.w, 1.0 + 0.5 * s, 400'000, 91 + s));
  }

  ev::ServeConfig config;
  config.ingress = test_ingress();
  config.n_workers = 1;  // deterministic worker-site batch indices
  config.capture_outputs = true;
  config.worker.collator.max_batch = 4;
  config.worker.max_retries = 5;
  config.worker.retry_backoff_ms = 0.1;
  for (const std::int64_t batch : {std::int64_t{0}, std::int64_t{2}}) {
    ev::FaultSpec crash;
    crash.type = ev::FaultType::kWorkerException;
    crash.worker_id = 0;
    crash.batch = batch;
    config.faults.add(crash);
  }
  ev::ServingRuntime runtime(spec, 7, config);
  const ev::ServeReport report = runtime.run(streams);  // must not throw

  EXPECT_TRUE(report.accounting_ok());
  EXPECT_EQ(report.faults.worker_exceptions, 2u);
  EXPECT_EQ(report.frames_failed, 0u);
  EXPECT_EQ(report.frames_dropped, 0u);
  ASSERT_EQ(report.workers.size(), 1u);
  EXPECT_EQ(report.workers[0].failures, 2u);
  EXPECT_EQ(report.workers[0].restarts, 2u);
  EXPECT_GE(report.workers[0].frames_retried, 1u);

  // Every frame completed — and despite two restarts mid-run, every
  // output is still bitwise the serial result (restart clones carry
  // identical weights; planner routes are bitwise-neutral).
  std::vector<std::vector<es::SparseFrame>> frames;
  for (const ee::EventStream& stream : streams) {
    frames.push_back(ev::ServingRuntime::ingest(stream, config.ingress));
  }
  const auto serial = runtime.run_serial(frames, true);
  for (std::size_t s = 0; s < frames.size(); ++s) {
    ASSERT_EQ(report.streams[s].completed, frames[s].size());
    for (std::size_t i = 0; i < frames[s].size(); ++i) {
      const es::DenseTensor* served =
          runtime.output(static_cast<int>(s), static_cast<std::int64_t>(i));
      ASSERT_NE(served, nullptr) << "stream " << s << " seq " << i;
      EXPECT_EQ(es::max_abs_diff(*served, serial.outputs[s][i]), 0.0f)
          << "stream " << s << " seq " << i;
    }
  }
}

TEST(FaultTolerance, RetryBudgetExhaustionQuarantines) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  std::vector<ee::EventStream> streams;
  streams.push_back(matched_stream(shape.h, shape.w, 1.5, 400'000, 101));

  ev::ServeConfig config;
  config.ingress = test_ingress();
  config.n_workers = 1;
  config.worker.use_planner = false;
  config.worker.collator.max_batch = 4;
  config.worker.max_retries = 0;  // first failure quarantines
  config.worker.retry_backoff_ms = 0.1;
  ev::FaultSpec crash;
  crash.type = ev::FaultType::kWorkerException;
  crash.worker_id = 0;
  crash.batch = 0;
  config.faults.add(crash);
  ev::ServingRuntime runtime(spec, 7, config);
  const ev::ServeReport report = runtime.run(streams);

  EXPECT_TRUE(report.accounting_ok());
  ASSERT_EQ(report.streams.size(), 1u);
  EXPECT_GE(report.streams[0].failed, 1u);
  EXPECT_EQ(report.streams[0].completed + report.streams[0].failed,
            report.streams[0].enqueued);
  EXPECT_GT(report.streams[0].completed, 0u);  // later batches survive
  ASSERT_GE(report.quarantined.size(), 1u);
  for (const ev::QuarantinedFrame& q : report.quarantined) {
    EXPECT_EQ(q.fault, ev::FrameFault::kRetriesExhausted);
    EXPECT_EQ(q.attempts, 1);
  }
  EXPECT_EQ(report.workers[0].restarts, 1u);
}

TEST(FaultTolerance, StreamDisconnectFailsOnlyThatStream) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  std::vector<ee::EventStream> streams;
  for (std::uint64_t s = 0; s < 2; ++s) {
    streams.push_back(
        matched_stream(shape.h, shape.w, 1.0 + 0.5 * s, 400'000, 111 + s));
  }
  std::vector<std::vector<es::SparseFrame>> frames;
  const ev::IngressConfig ingress = test_ingress();
  for (const ee::EventStream& stream : streams) {
    frames.push_back(ev::ServingRuntime::ingest(stream, ingress));
  }
  ASSERT_GE(frames[0].size(), 4u);  // the disconnect site must exist

  ev::ServeConfig config;
  config.ingress = ingress;
  config.n_workers = 2;
  config.capture_outputs = true;
  config.worker.use_planner = false;
  ev::FaultSpec disconnect;
  disconnect.type = ev::FaultType::kStreamDisconnect;
  disconnect.stream_id = 0;
  disconnect.seq = 2;
  config.faults.add(disconnect);
  ev::ServingRuntime runtime(spec, 7, config);
  const ev::ServeReport report = runtime.run(streams);

  EXPECT_TRUE(report.accounting_ok());
  EXPECT_EQ(report.faults.stream_disconnects, 1u);
  ASSERT_EQ(report.streams.size(), 2u);
  EXPECT_TRUE(report.streams[0].ingress_failed);
  EXPECT_FALSE(report.streams[0].failure_reason.empty());
  EXPECT_EQ(report.streams[0].enqueued, 2u);  // seqs 0, 1 got through
  EXPECT_EQ(report.streams[0].completed, 2u);
  // The sibling stream is untouched and runs to completion.
  EXPECT_FALSE(report.streams[1].ingress_failed);
  EXPECT_EQ(report.streams[1].completed, frames[1].size());

  const auto serial = runtime.run_serial(frames, false);
  for (std::size_t s = 0; s < frames.size(); ++s) {
    const std::size_t served_count = report.streams[s].completed;
    for (std::size_t i = 0; i < served_count; ++i) {
      const es::DenseTensor* served =
          runtime.output(static_cast<int>(s), static_cast<std::int64_t>(i));
      ASSERT_NE(served, nullptr) << "stream " << s << " seq " << i;
      EXPECT_EQ(es::max_abs_diff(*served, serial.outputs[s][i]), 0.0f)
          << "stream " << s << " seq " << i;
    }
  }
}

// ------------------------------------------------------- SLO shedding

TEST(SloShedding, ExpiredDeadlineShedsBeforeInference) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  std::vector<ee::EventStream> streams;
  for (std::uint64_t s = 0; s < 2; ++s) {
    streams.push_back(
        matched_stream(shape.h, shape.w, 1.0, 300'000, 121 + s));
  }

  ev::ServeConfig config;
  config.ingress = test_ingress();
  config.n_workers = 1;
  config.worker.use_planner = false;
  // A deadline far below any real queue-to-collation latency: every
  // frame is stale by the time a worker picks it up, so everything is
  // shed and nothing reaches inference.
  config.slo.deadline_ms = 1e-4;
  ev::ServingRuntime runtime(spec, 7, config);
  const ev::ServeReport report = runtime.run(streams);

  EXPECT_TRUE(report.accounting_ok());
  EXPECT_EQ(report.frames_completed, 0u);
  EXPECT_GT(report.frames_shed, 0u);
  std::size_t enqueued = 0;
  for (const ev::StreamServeStats& s : report.streams) {
    EXPECT_EQ(s.completed, 0u);
    EXPECT_EQ(s.shed, s.enqueued);
    enqueued += s.enqueued;
  }
  EXPECT_EQ(report.frames_shed, enqueued);
  std::size_t worker_shed = 0;
  for (const ev::WorkerServeStats& w : report.workers) {
    worker_shed += w.frames_shed;
  }
  EXPECT_EQ(worker_shed, report.frames_shed);
  EXPECT_EQ(report.quarantined.size(), report.frames_shed);
  for (const ev::QuarantinedFrame& q : report.quarantined) {
    EXPECT_EQ(q.fault, ev::FrameFault::kDeadlineExceeded);
  }
}

// ------------------------------------------------- degradation ladder

TEST(Degradation, HysteresisWalksLadderOneRungAtATime) {
  ev::FrameQueue queue(4, ev::OverflowPolicy::kBlock);
  ev::SloConfig slo;
  slo.degrade = true;
  slo.enter_intervals = 2;
  slo.exit_intervals = 2;
  slo.allow_int8 = true;
  ev::DegradationState state;
  ev::DegradationController controller(slo, queue, state);

  for (int i = 0; i < 4; ++i) {
    (void)queue.push(synthetic_ready(0, i, 8, 8, 0.1, 7));
  }
  controller.sample(1.0);  // 1 high sample: hysteresis holds
  EXPECT_EQ(state.level(), ev::kDegradeNormal);
  controller.sample(2.0);  // 2nd consecutive: escalate
  EXPECT_EQ(state.level(), ev::kDegradeDropOldest);
  EXPECT_EQ(queue.policy(), ev::OverflowPolicy::kDropOldest);
  controller.sample(3.0);
  controller.sample(4.0);
  EXPECT_EQ(state.level(), ev::kDegradeWideBatch);
  controller.sample(5.0);
  controller.sample(6.0);
  EXPECT_EQ(state.level(), ev::kDegradeInt8);
  controller.sample(7.0);
  controller.sample(8.0);
  EXPECT_EQ(state.level(), ev::kDegradeInt8);  // already at the top

  while (queue.pop_until(std::chrono::steady_clock::now()).has_value()) {
  }
  EXPECT_EQ(queue.depth(), 0u);
  controller.sample(9.0);
  controller.sample(10.0);
  EXPECT_EQ(state.level(), ev::kDegradeWideBatch);
  controller.sample(11.0);
  controller.sample(12.0);
  EXPECT_EQ(state.level(), ev::kDegradeDropOldest);
  controller.sample(13.0);
  controller.sample(14.0);
  EXPECT_EQ(state.level(), ev::kDegradeNormal);
  EXPECT_EQ(queue.policy(), ev::OverflowPolicy::kBlock);  // restored
  controller.finish(15.0);

  EXPECT_EQ(controller.transitions().size(), 6u);
  EXPECT_EQ(controller.max_level_reached(), ev::kDegradeInt8);
  const auto& ms = controller.ms_at_level();
  EXPECT_DOUBLE_EQ(ms[0] + ms[1] + ms[2] + ms[3], 15.0);
  EXPECT_DOUBLE_EQ(ms[3], 4.0);  // t=6 .. t=10 at the int8 rung
  queue.close();
}

TEST(Degradation, WideBatchRungWidensCollation) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  en::FunctionalNetwork prototype(spec, 7);

  ev::WorkerConfig config;
  config.use_planner = false;
  config.collator.max_batch = 2;
  config.collator.max_wait_us = 1e5;
  ev::ServeWorker worker(0, prototype, config);

  ev::FrameQueue queue(16, ev::OverflowPolicy::kBlock);
  for (int i = 0; i < 4; ++i) {
    (void)queue.push(synthetic_ready(0, i, shape.h, shape.w, 0.05, 60 + i));
  }
  queue.close();

  ev::DegradationState state;
  state.set_level(ev::kDegradeWideBatch);
  std::size_t sunk = 0;
  ev::ServeHooks hooks;
  hooks.result = [&](const ev::ReadyFrame&, const es::DenseTensor&, int,
                     double) { ++sunk; };
  hooks.degrade = &state;
  hooks.slo.batch_widen_factor = 2;
  worker.serve(queue, hooks);

  EXPECT_EQ(sunk, 4u);
  // At rung 2 the 2-frame window widens 2x: one 4-frame batch instead
  // of two.
  EXPECT_EQ(worker.stats().batches, 1u);
  EXPECT_EQ(worker.stats().samples, 4u);
}

TEST(Degradation, Int8RungInstallsAndStepsBackBitwise) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  en::FunctionalNetwork prototype(spec, 7);

  ev::WorkerConfig config;
  config.use_planner = false;
  config.collator.max_batch = 4;
  config.collator.max_wait_us = 1e5;
  const auto frames_of = [&] {
    std::vector<ev::ReadyFrame> frames;
    for (int i = 0; i < 3; ++i) {
      frames.push_back(
          synthetic_ready(0, i, shape.h, shape.w, 0.05, 70 + i));
    }
    return frames;
  };

  // FP32 reference outputs for the same 3-frame batch.
  ev::ServeWorker reference(1, prototype, config);
  std::vector<es::DenseTensor> want(3);
  reference.process_batch(
      frames_of(), [&](const ev::ReadyFrame& f, const es::DenseTensor& out,
                       int lane, double) {
        es::copy_sample(out, lane, want[static_cast<std::size_t>(f.seq)]);
      });

  ev::ServeWorker worker(0, prototype, config);
  ev::DegradationState state;
  std::vector<es::DenseTensor> got(3);
  ev::ServeHooks hooks;
  hooks.degrade = &state;
  hooks.slo.allow_int8 = true;
  hooks.result = [&](const ev::ReadyFrame& f, const es::DenseTensor& out,
                     int lane, double) {
    es::copy_sample(out, lane, got[static_cast<std::size_t>(f.seq)]);
  };

  // Rung 3: the worker lazily calibrates and installs the int8 plan.
  state.set_level(ev::kDegradeInt8);
  {
    ev::FrameQueue queue(8, ev::OverflowPolicy::kBlock);
    for (ev::ReadyFrame& f : frames_of()) (void)queue.push(std::move(f));
    queue.close();
    worker.serve(queue, hooks);
  }
  EXPECT_EQ(worker.stats().int8_batches, 1u);
  EXPECT_TRUE(worker.int8_active());

  // Back at level 0 the quant plan uninstalls and the SAME frames
  // produce bitwise the FP32 outputs again.
  state.set_level(ev::kDegradeNormal);
  {
    ev::FrameQueue queue(8, ev::OverflowPolicy::kBlock);
    for (ev::ReadyFrame& f : frames_of()) (void)queue.push(std::move(f));
    queue.close();
    worker.serve(queue, hooks);
  }
  EXPECT_FALSE(worker.int8_active());
  EXPECT_EQ(worker.stats().int8_batches, 1u);  // did not grow
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(es::max_abs_diff(got[i], want[i]), 0.0f) << "seq " << i;
  }
}

TEST(Degradation, RuntimeLadderAccountsTimePerLevel) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  std::vector<ee::EventStream> streams;
  for (std::uint64_t s = 0; s < 3; ++s) {
    streams.push_back(
        matched_stream(shape.h, shape.w, 2.0, 400'000, 131 + s));
  }

  ev::ServeConfig config;
  config.ingress = test_ingress();
  config.n_workers = 1;
  config.queue_capacity = 4;  // small: the single worker backs it up
  config.worker.use_planner = false;
  config.slo.degrade = true;
  config.slo.eval_interval_ms = 0.5;
  config.slo.enter_intervals = 1;
  config.slo.exit_intervals = 2;
  config.slo.high_watermark = 0.5;
  config.slo.low_watermark = 0.25;
  ev::ServingRuntime runtime(spec, 7, config);
  const ev::ServeReport report = runtime.run(streams);

  EXPECT_TRUE(report.accounting_ok());
  const auto& ms = report.ms_at_degrade_level;
  // The ladder's time accounting must tile the whole run.
  EXPECT_NEAR(ms[0] + ms[1] + ms[2] + ms[3], report.wall_ms, 1e-3);
  if (!report.degradation.empty()) {
    EXPECT_GE(report.max_degrade_level, ev::kDegradeDropOldest);
    EXPECT_EQ(report.degradation.front().from, ev::kDegradeNormal);
    EXPECT_EQ(report.degradation.front().to, ev::kDegradeDropOldest);
  }
}

// --------------------------------------- all-fault soak + reproducibility

TEST(FaultTolerance, SoakAllFaultTypesIsReproducible) {
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, en::ZooConfig::test_scale());
  const auto shape =
      spec.graph.node(spec.graph.input_ids().front()).spec.out_shape;
  std::vector<ee::EventStream> streams;
  for (std::uint64_t s = 0; s < 3; ++s) {
    streams.push_back(
        matched_stream(shape.h, shape.w, 1.0 + 0.5 * s, 400'000, 141 + s));
  }
  std::vector<std::vector<es::SparseFrame>> frames;
  const ev::IngressConfig ingress = test_ingress();
  for (const ee::EventStream& stream : streams) {
    frames.push_back(ev::ServingRuntime::ingest(stream, ingress));
  }
  ASSERT_GE(frames[2].size(), 4u);  // the disconnect site must exist

  ev::ServeConfig config;
  config.ingress = ingress;
  config.n_workers = 1;  // deterministic worker-site batch indices
  config.capture_outputs = true;
  config.worker.collator.max_batch = 4;
  config.worker.max_retries = 5;  // above the crash count: no quarantine
  config.worker.retry_backoff_ms = 0.1;
  // Every fault type at pinned sites (the seeded-plan soak lives in
  // bench_serve_soak; here the sites are exact so the expectations are).
  auto& plan = config.faults;
  {
    ev::FaultSpec f;
    f.type = ev::FaultType::kCorruptFrame;
    f.stream_id = 0;
    f.seq = 1;
    f.corrupt = ev::CorruptKind::kOutOfBoundsCoordinate;
    plan.add(f);
    f.stream_id = 1;
    f.seq = 2;
    f.corrupt = ev::CorruptKind::kNonFiniteValue;
    plan.add(f);
  }
  {
    ev::FaultSpec f;
    f.type = ev::FaultType::kStreamStall;
    f.stream_id = 2;
    f.seq = 0;
    f.delay_ms = 2.0;
    plan.add(f);
  }
  {
    ev::FaultSpec f;
    f.type = ev::FaultType::kStreamDisconnect;
    f.stream_id = 2;
    f.seq = 3;
    plan.add(f);
  }
  {
    ev::FaultSpec f;
    f.type = ev::FaultType::kLatencySpike;
    f.worker_id = 0;
    f.batch = 0;
    f.delay_ms = 1.0;
    plan.add(f);
  }
  {
    ev::FaultSpec f;
    f.type = ev::FaultType::kWorkerException;
    f.worker_id = 0;
    f.batch = 1;
    plan.add(f);
    f.batch = 3;
    plan.add(f);
  }

  ev::ServingRuntime runtime(spec, 7, config);
  const ev::ServeReport first = runtime.run(streams);  // must not throw

  EXPECT_TRUE(first.accounting_ok());
  EXPECT_EQ(first.faults.corrupt_frames, 2u);
  EXPECT_EQ(first.faults.stream_stalls, 1u);
  EXPECT_EQ(first.faults.stream_disconnects, 1u);
  EXPECT_EQ(first.faults.latency_spikes, 1u);
  EXPECT_EQ(first.faults.worker_exceptions, 2u);
  ASSERT_EQ(first.streams.size(), 3u);
  EXPECT_EQ(first.streams[0].failed, 1u);
  EXPECT_EQ(first.streams[1].failed, 1u);
  EXPECT_TRUE(first.streams[2].ingress_failed);
  EXPECT_EQ(first.streams[2].enqueued, 3u);
  EXPECT_EQ(first.frames_dropped, 0u);  // kBlock, no SLO

  // Every unaffected (stream, seq) output is bitwise the serial result.
  const auto serial = runtime.run_serial(frames, true);
  std::size_t checked = 0;
  for (std::size_t s = 0; s < frames.size(); ++s) {
    for (std::size_t i = 0; i < frames[s].size(); ++i) {
      const es::DenseTensor* served =
          runtime.output(static_cast<int>(s), static_cast<std::int64_t>(i));
      if (served == nullptr) continue;  // quarantined / after disconnect
      EXPECT_EQ(es::max_abs_diff(*served, serial.outputs[s][i]), 0.0f)
          << "stream " << s << " seq " << i;
      ++checked;
    }
  }
  EXPECT_EQ(checked, first.frames_completed);

  // Same plan, same streams: the second run reproduces the per-stream
  // accounting, the fault counters, and the quarantine set exactly.
  const ev::ServeReport second = runtime.run(streams);
  EXPECT_TRUE(second.accounting_ok());
  for (std::size_t s = 0; s < first.streams.size(); ++s) {
    EXPECT_EQ(second.streams[s].enqueued, first.streams[s].enqueued);
    EXPECT_EQ(second.streams[s].completed, first.streams[s].completed);
    EXPECT_EQ(second.streams[s].failed, first.streams[s].failed);
    EXPECT_EQ(second.streams[s].shed, first.streams[s].shed);
    EXPECT_EQ(second.streams[s].dropped, first.streams[s].dropped);
  }
  EXPECT_EQ(second.faults.total(), first.faults.total());
  ASSERT_EQ(second.quarantined.size(), first.quarantined.size());
  const auto sorted_sites = [](const ev::ServeReport& r) {
    std::vector<std::pair<int, std::int64_t>> sites;
    for (const ev::QuarantinedFrame& q : r.quarantined) {
      sites.emplace_back(q.stream_id, q.seq);
    }
    std::sort(sites.begin(), sites.end());
    return sites;
  };
  EXPECT_EQ(sorted_sites(second), sorted_sites(first));
}

// ------------------------------------- latency-driven degradation (PR 7)

TEST(Degradation, LatencySpikeEscalatesWithoutQueueGrowth) {
  // A worker stall that inflates tail latency while the queue stays
  // EMPTY (paced arrivals well below capacity) must still walk the
  // ladder: the rolling-p99 trigger fires where the fill watermark
  // cannot.
  ev::FrameQueue queue(16, ev::OverflowPolicy::kBlock);
  ev::DegradationState state;
  ev::SloConfig slo;
  slo.degrade = true;
  slo.enter_intervals = 3;
  slo.exit_intervals = 4;
  slo.latency_high_ms = 10.0;  // p99 >= 10 ms escalates
  ev::DegradationController controller(slo, queue, state);
  ev::RollingLatency probe(16);
  controller.set_latency_probe(&probe);
  std::size_t hook_fires = 0;
  controller.set_transition_hook(
      [&](const ev::DegradationTransition&) { ++hook_fires; });

  // Fewer than 4 samples: the trigger is inert no matter how slow.
  probe.add(500'000.0);
  probe.add(500'000.0);
  for (int i = 0; i < 6; ++i) controller.sample(i);
  EXPECT_EQ(state.level(), ev::kDegradeNormal);

  // A sustained 50 ms p99 with the queue empty escalates one rung per
  // enter_intervals streak.
  for (int i = 0; i < 8; ++i) probe.add(50'000.0);
  for (int i = 0; i < 3; ++i) controller.sample(10 + i);
  EXPECT_EQ(state.level(), ev::kDegradeDropOldest);
  ASSERT_EQ(controller.transitions().size(), 1u);
  EXPECT_EQ(controller.transitions()[0].queue_depth, 0u);  // no growth
  EXPECT_GE(controller.transitions()[0].p99_ms, slo.latency_high_ms);
  EXPECT_EQ(hook_fires, 1u);

  for (int i = 0; i < 3; ++i) controller.sample(20 + i);
  EXPECT_EQ(state.level(), ev::kDegradeWideBatch);

  // Recovery needs p99 back under latency_low (default high/2): refill
  // the forgetting window with fast completions and the ladder steps
  // down (queue fill was low the whole time).
  for (int i = 0; i < 16; ++i) probe.add(1'000.0);
  for (int i = 0; i < 4; ++i) controller.sample(30 + i);
  EXPECT_EQ(state.level(), ev::kDegradeDropOldest);
  for (int i = 0; i < 4; ++i) controller.sample(40 + i);
  EXPECT_EQ(state.level(), ev::kDegradeNormal);
  EXPECT_EQ(hook_fires, controller.transitions().size());
  controller.finish(50.0);
}

TEST(Degradation, HotTailBlocksRecoveryDespiteDrainedQueue) {
  // Queue drained but p99 still above latency_low: stay degraded.
  ev::FrameQueue queue(16, ev::OverflowPolicy::kBlock);
  ev::DegradationState state;
  ev::SloConfig slo;
  slo.degrade = true;
  slo.enter_intervals = 2;
  slo.exit_intervals = 2;
  slo.latency_high_ms = 10.0;
  slo.latency_low_ms = 4.0;
  ev::DegradationController controller(slo, queue, state);
  ev::RollingLatency probe(8);
  controller.set_latency_probe(&probe);

  for (int i = 0; i < 8; ++i) probe.add(20'000.0);
  for (int i = 0; i < 2; ++i) controller.sample(i);
  ASSERT_EQ(state.level(), ev::kDegradeDropOldest);

  // 6 ms p99: below high, above low -> neither streak accumulates.
  for (int i = 0; i < 8; ++i) probe.add(6'000.0);
  for (int i = 0; i < 10; ++i) controller.sample(10 + i);
  EXPECT_EQ(state.level(), ev::kDegradeDropOldest);

  // Under the recovery bound: de-escalates.
  for (int i = 0; i < 8; ++i) probe.add(2'000.0);
  for (int i = 0; i < 2; ++i) controller.sample(30 + i);
  EXPECT_EQ(state.level(), ev::kDegradeNormal);
  controller.finish(40.0);
}
