#pragma once

// Analytic model of a heterogeneous edge platform. The preset mirrors the
// NVIDIA Jetson Xavier AGX the paper evaluates on: 8-core Carmel CPU, a
// 512-core Volta integrated GPU and two DLA engines sharing LPDDR4x
// unified memory. Peak-rate and power constants follow the public
// datasheet / MAXN power-mode measurements; per-layer times produced from
// them stand in for the TensorRT profiles the paper records before the
// mapping search (DESIGN.md section 2).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "quant/precision.hpp"

namespace evedge::hw {

using quant::Precision;

enum class PeKind : std::uint8_t { kCpu, kGpu, kDla };

[[nodiscard]] std::string to_string(PeKind kind);

/// One processing element of the platform.
struct ProcessingElement {
  int id = -1;
  std::string name;
  PeKind kind = PeKind::kGpu;

  /// Peak multiply-accumulate rate per precision (MAC/s); 0 = precision
  /// not supported on this PE (e.g. the DLA has no FP32 path).
  std::array<double, 3> peak_macs_per_s{};

  /// Fraction of peak sustained on dense conv workloads.
  double dense_efficiency = 0.5;
  /// Additional multiplier for spiking (LIF) layers — elementwise,
  /// branchy state updates utilize wide SIMD/tensor datapaths poorly.
  double spiking_efficiency = 0.3;
  /// Fixed per-layer dispatch overhead (kernel launch / DLA submit), us.
  double launch_overhead_us = 20.0;
  /// Effective local memory bandwidth for activation traffic, bytes/us.
  double mem_bandwidth_bytes_per_us = 60'000.0;
  /// Whether sparse (COO gather-scatter) kernels are available.
  bool supports_sparse = false;
  /// Per-MAC cost multiplier of the sparse route relative to dense MACs.
  double sparse_overhead = 2.5;

  /// Active power draw per precision (W) while executing, and idle power.
  std::array<double, 3> active_power_w{};
  double idle_power_w = 0.5;

  [[nodiscard]] bool supports(Precision p) const noexcept {
    return peak_macs_per_s[static_cast<std::size_t>(p)] > 0.0;
  }
  [[nodiscard]] double peak(Precision p) const noexcept {
    return peak_macs_per_s[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] double active_power(Precision p) const noexcept {
    return active_power_w[static_cast<std::size_t>(p)];
  }
};

/// The platform: processing elements + unified memory fabric.
struct Platform {
  std::string name;
  std::vector<ProcessingElement> pes;

  /// Unified-memory copy bandwidth between PEs (bytes/us) and the fixed
  /// synchronization cost per transfer (us). Producer/consumer layers on
  /// the same PE communicate through cache/registers at zero model cost.
  double unified_mem_bandwidth_bytes_per_us = 85'000.0;
  double transfer_sync_overhead_us = 12.0;

  [[nodiscard]] const ProcessingElement& pe(int id) const;
  [[nodiscard]] int pe_count() const noexcept {
    return static_cast<int>(pes.size());
  }
  /// Id of the first PE of the given kind; throws if absent.
  [[nodiscard]] int first_pe(PeKind kind) const;

  void validate() const;
};

/// Jetson Xavier AGX preset (MAXN power mode).
[[nodiscard]] Platform xavier_agx();

/// Time to move `bytes` between two PEs over unified memory (0 for same PE).
[[nodiscard]] double transfer_time_us(const Platform& platform, int from_pe,
                                      int to_pe, double bytes);

}  // namespace evedge::hw
