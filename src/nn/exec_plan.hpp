#pragma once

// Density-adaptive execution planning: the per-layer dense-vs-sparse
// dataflow decision the paper's E2SF analysis makes analytically,
// promoted to a first-class runtime artifact the engine executes.
//
// An ExecutionPlan assigns every node a Route:
//   kDense        the conventional dense kernels (conv2d / int8_conv2d)
//   kCsr          the gather/CSR sparse kernels (sparse_conv2d_csr and,
//                 on quantized layers, int8_sparse_conv2d_csr). Output
//                 stays in COO form, so consecutive kCsr layers chain
//                 densify-free ("fused CSR chains"). With the engine's
//                 zero-bias layers this route is bitwise identical to
//                 dense execution everywhere (the stored sites carry the
//                 dense values; unreached sites are exact zeros in both).
//   kSubmanifold  Graham-style submanifold convolution: output restricted
//                 to the union of input active sites. Bitwise identical
//                 to the dense path AT STORED SITES but drops the halo
//                 sites a dense conv would populate — a deliberate
//                 semantic change (the standard sparse-SNN operator), so
//                 the planner only selects it when explicitly allowed.
//
// The ExecutionPlanner chooses routes from measured spiking activation
// densities (calibrate: warmup runs through an activation hook) or from a
// density profile supplied by the analytical cost model
// (core::seed_execution_plan wraps core/inference_cost's probe as the
// cold-start default). The crossover model mirrors the cost model's
// dense-vs-sparse comparison with constants fit to BENCH_kernels.json.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/graph.hpp"
#include "sparse/tensor.hpp"

namespace evedge::nn {

class FunctionalNetwork;

/// Per-node execution route (see file comment for semantics).
enum class Route : std::uint8_t { kDense, kSubmanifold, kCsr };

[[nodiscard]] std::string to_string(Route route);

/// One tiled chain: a maximal run of consecutively-numbered,
/// parent-linked sparse-routed conv nodes the engine executes tile by
/// tile — each band of exit-layer output rows is pushed through the
/// whole chain before the next band starts, so the chain's per-tile
/// working set stays cache-resident instead of round-tripping full
/// feature maps through DRAM (the streaming tile dataflow of the
/// composable sparse-accelerator literature, on a CPU cache hierarchy).
struct TileChain {
  std::vector<int> nodes;  ///< consecutive node ids, each the next's parent
  int tile_rows = 1;       ///< exit-layer output rows per tile
  int tiles = 1;           ///< ceil(exit_h / tile_rows); 1 == untiled
};

/// Tiled execution geometry attached to an ExecutionPlan. Interior
/// layers of a tile get proportional row bands grown backward through
/// each conv's kernel/stride halo; a chain with tiles == 1 (or an empty
/// plan) runs exactly today's layer-at-a-time execution. Tiling never
/// changes results: FP32 outputs are bitwise identical to untiled
/// execution for every tile size (see RowWindow in sparse_ops.hpp for
/// why).
struct TilePlan {
  std::vector<TileChain> chains;

  /// True when any chain actually tiles (tiles > 1).
  [[nodiscard]] bool enabled() const noexcept;
};

/// Tile-geometry policy for build_tile_plan's cache-capacity model.
struct TileOptions {
  /// Per-tile working-set target. Default ~1 MiB: comfortably inside a
  /// per-core L2 slice, leaving room for weights and the tap stream.
  std::size_t l2_budget_bytes = 1u << 20;
  /// Exit-layer rows per tile, overriding the cache model (tests and the
  /// bench tile sweep). 0 = let the model pick.
  int forced_tile_rows = 0;
  /// Master switch: false pins every chain to 1 tile (== untiled).
  bool enable = true;
};

/// A prepared per-node route assignment plus the density telemetry it was
/// derived from. Installed on a FunctionalNetwork via
/// set_execution_plan(); non-owning there, so the plan must outlive its
/// installation.
struct ExecutionPlan {
  /// Route per node id; empty (or kDense entries) means dense.
  std::vector<Route> route;
  /// Estimated/measured mean OUTPUT density per node id (1.0 default).
  /// For spiking nodes this is the mean firing rate over the probe runs.
  std::vector<double> output_density;
  /// Density of the calibration probe's event input (telemetry).
  double probe_input_density = 0.0;
  /// Tiled-chain geometry for the routed nodes (default-constructed ==
  /// untiled). The planner attaches build_tile_plan's choice; callers
  /// building plans by hand may leave it empty or fill it themselves.
  TilePlan tiles;

  [[nodiscard]] int sparse_node_count() const noexcept;

  /// True when `live_density` lies inside this plan's calibration band
  /// [probe/band, probe*band] around probe_input_density (band >= 1).
  /// The serving runtime re-calibrates a worker's plan when the live
  /// input density leaves the band (DSFA tracks the drift signal): the
  /// routes were chosen for the probe's density regime and go stale when
  /// the scene changes. A plan with no recorded probe density is always
  /// out of band.
  [[nodiscard]] bool density_in_band(double live_density,
                                     double band) const noexcept;

  [[nodiscard]] Route route_of(int node_id) const noexcept {
    const auto idx = static_cast<std::size_t>(node_id);
    return node_id >= 0 && idx < route.size() ? route[idx] : Route::kDense;
  }
  /// Human-readable route table (bench/debug output).
  [[nodiscard]] std::string describe(const NetworkSpec& spec) const;
};

/// Finds the sparse chains of `plan` over `spec` and chooses tile
/// geometry for each from a cache-capacity model over the chain's
/// channel widths (forced_tile_rows overrides). Chains whose whole
/// working set fits the budget — and, under the model, single-node
/// chains, which have no inter-layer reuse to win — get the degenerate
/// 1-tile geometry.
[[nodiscard]] TilePlan build_tile_plan(const NetworkSpec& spec,
                                       const ExecutionPlan& plan,
                                       const TileOptions& options = {});

/// Planner policy knobs. All cost constants are in dense-GEMM-MAC
/// units, fit to single-core measurements of the gather kernels on real
/// engine activations at DAVIS346 scale (see bench_sparse_engine): the
/// packed 8-wide tap reduction runs at ~2x the per-MAC cost of dense
/// GEMM, while the branchy bookkeeping around it (tap enumeration,
/// output-entry emission, boundary scans) costs tens of MAC units per
/// element. The resulting crossover routes event-input layers and
/// low-rate spiking stages sparse and leaves ReLU-dense decoders alone.
struct PlannerOptions {
  /// Per-MAC cost of the gather tap reduction relative to dense GEMM.
  double reduce_cost_factor = 2.2;
  /// Per-MAC cost of the dense-output scatter kernel (the route spiking
  /// convs take: their LIF consumer needs dense current, so the engine
  /// scatters straight into the staging tensor with no COO
  /// materialization or per-site bookkeeping).
  double scatter_cost_factor = 3.0;
  /// Cost per bookkeeping element: tap enumeration (one per input
  /// non-zero x kernel tap) and potential output-entry emission (one per
  /// active site x output channel).
  double overhead_cost_factor = 25.0;
  /// Cost per element of sparsifying a dense parent at a chain head.
  double sparsify_cost_per_element = 8.0;
  /// Cost per element of densifying the output at a route exit.
  double densify_cost_per_element = 2.0;
  /// Sparse must win by this factor to be chosen — hysteresis against
  /// noisy density estimates AND against the model's own error on
  /// marginal layers: a mispredicted marginal route costs real time,
  /// while a skipped marginal win costs almost nothing.
  double margin = 1.35;
  /// Permit kSubmanifold for eligible stride-1 layers. Off by default:
  /// submanifold restricts the active set (stored-site-exact only),
  /// while kCsr preserves dense numerics exactly.
  bool allow_submanifold = false;
  /// Input density assumed by cold_start() before any measurement.
  double cold_start_input_density = 0.02;
  /// Tile-geometry policy handed to build_tile_plan for the routes the
  /// planner chooses (every planner entry point attaches a TilePlan).
  TileOptions tile;
};

/// How a sparse-routed spiking conv materializes its dense LIF current:
/// narrow layers scatter straight into the staging tensor (each tap
/// touches few output planes — cache-friendly, zero bookkeeping), wide
/// layers run the vectorized gather reduction and densify (a tap's
/// scatter would stride across out_channels planes). Shared between the
/// planner's cost model and the engine's dispatch so both agree.
[[nodiscard]] constexpr bool scatter_current_route(
    const sparse::Conv2dSpec& conv) noexcept {
  return conv.out_channels <= 32;
}

/// One calibration input (non-owning views over caller tensors).
struct ProbeInput {
  std::span<const sparse::DenseTensor> event_steps;
  const sparse::DenseTensor* image = nullptr;
};

class ExecutionPlanner {
 public:
  /// Builds a plan from per-node OUTPUT densities (indexed by node id;
  /// e.g. core::ActivationDensityProfile::density). `net` supplies the
  /// graph and the bias vectors (sparse routes require zero bias — the
  /// CSR kernels add bias at active sites only).
  [[nodiscard]] static ExecutionPlan plan_from_densities(
      const FunctionalNetwork& net, std::span<const double> output_density,
      double probe_input_density, const PlannerOptions& options = {});

  /// Measures per-node activation densities over `probes` (dense warmup
  /// runs through a scoped activation hook; the caller's hook and any
  /// installed plan are untouched) and plans from them.
  [[nodiscard]] static ExecutionPlan calibrate(
      FunctionalNetwork& net, std::span<const ProbeInput> probes,
      const PlannerOptions& options = {});

  /// Convenience single-probe calibration.
  [[nodiscard]] static ExecutionPlan calibrate(
      FunctionalNetwork& net, std::span<const sparse::DenseTensor> event_steps,
      const sparse::DenseTensor* image = nullptr,
      const PlannerOptions& options = {});

  /// Cold-start plan with no measurements: only layers reading the raw
  /// event input (whose density options.cold_start_input_density states)
  /// are considered for sparse routes; deeper layers stay dense until a
  /// calibrate() pass measures their real activity. This is the
  /// analytical default core::seed_execution_plan refines with the cost
  /// model's probe densities.
  [[nodiscard]] static ExecutionPlan cold_start(
      const FunctionalNetwork& net, const PlannerOptions& options = {});
};

}  // namespace evedge::nn
