#pragma once

// Network Mapper (NMP, paper §4.3): evolutionary search over per-layer
// (processing element, precision) assignments for concurrently executing
// tasks, minimizing the maximum task latency subject to per-task accuracy
// degradation bounds (Eq. 2). Latency of a candidate comes from the list
// scheduler (Eq. 3); accuracy degradation from a caller-supplied model
// (normally a quant::SensitivityModel calibrated on the functional nets).

#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "sched/scheduler.hpp"

namespace evedge::mapper {

using sched::MappingCandidate;
using sched::TaskMapping;

/// Accuracy-degradation oracle: Delta-A of one task under a mapping, in
/// the task's metric units (see quant::metric_degradation).
using AccuracyFn =
    std::function<double(int task_index, const TaskMapping& mapping)>;

/// Optimization objective (paper §4.3: "this procedure can be repeated
/// to optimize for other objectives such as energy as well").
enum class Objective : std::uint8_t {
  kLatency,            ///< Eq. 2: minimize max task latency
  kEnergy,             ///< minimize schedule energy
  kEnergyDelayProduct, ///< minimize energy x max task latency
};

struct NmpConfig {
  int population = 24;
  int generations = 30;
  Objective objective = Objective::kLatency;
  /// Layers per task replaced with random genes during mutation
  /// (paper: "a specified number of layers in each task is replaced").
  int mutation_layers = 2;
  /// Per-task accuracy degradation bound (Eq. 2's Delta-A), metric units.
  double accuracy_threshold = 0.05;
  /// Fitness penalty slope for constraint violations.
  double constraint_penalty = 4.0;
  /// false = Ev-Edge-NMP-FP: only full-precision mappings are searched.
  /// Following TensorRT convention, FP32 and FP16 both count as full
  /// precision ("prevent any accuracy degradation"); INT8 is the
  /// quantized mode this flag disables.
  bool allow_reduced_precision = true;
  std::uint64_t seed = 1;

  /// Fraction of elite candidates carried over unchanged per generation.
  double elite_fraction = 0.25;

  /// Seed the initial population with latency-greedy candidates (per-node
  /// argmin execution time, plus a full-precision constraint-safe
  /// variant) and with the round-robin baseline candidates. Deviation
  /// from the paper's purely random initialization that substantially
  /// tightens convergence at small budgets; disable to reproduce the
  /// paper's initialization.
  bool seed_greedy = true;
};

/// One point of the convergence history (Fig. 10a).
struct GenerationRecord {
  int generation = 0;
  double best_fitness = 0.0;
  double mean_fitness = 0.0;
  double best_latency_us = 0.0;
  double best_accuracy_violation = 0.0;
};

struct NmpResult {
  MappingCandidate best;
  sched::ScheduleResult best_schedule;
  std::vector<double> task_degradation;  ///< Delta-A per task of `best`
  std::vector<GenerationRecord> history;
  std::size_t fitness_evaluations = 0;   ///< scheduler+accuracy runs
  std::size_t cache_hits = 0;            ///< candidates served from cache
};

class NetworkMapper {
 public:
  NetworkMapper(std::vector<nn::NetworkSpec> specs,
                std::vector<hw::TaskProfile> profiles, hw::Platform platform,
                AccuracyFn accuracy, NmpConfig config);

  /// Runs the evolutionary search.
  [[nodiscard]] NmpResult run();

  /// Draws one random valid candidate (used for initialization and by
  /// the random-search baseline).
  [[nodiscard]] MappingCandidate random_candidate(std::uint64_t seed) const;

  /// Latency-greedy candidate: every node takes its fastest supported
  /// (PE, precision) pair in isolation (contention-blind). With
  /// `full_precision_only`, INT8 is excluded so the candidate is
  /// accuracy-constraint-safe by construction.
  [[nodiscard]] MappingCandidate greedy_candidate(
      bool full_precision_only) const;

  /// Fitness of a candidate: max task latency inflated by accuracy
  /// violations. Lower is better. Exposed for the baselines/benches.
  [[nodiscard]] double fitness(const MappingCandidate& candidate,
                               sched::ScheduleResult* schedule_out = nullptr,
                               std::vector<double>* degradation_out =
                                   nullptr) const;

  [[nodiscard]] const NmpConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<nn::NetworkSpec>& specs() const noexcept {
    return specs_;
  }

 private:
  /// (pe, precision) choices valid for a node under the config.
  [[nodiscard]] std::vector<sched::NodeAssignment> choices_for(
      int task, int node_id) const;

  void mutate(MappingCandidate& candidate, std::mt19937_64& rng) const;

  std::vector<nn::NetworkSpec> specs_;
  std::vector<hw::TaskProfile> profiles_;
  hw::Platform platform_;
  AccuracyFn accuracy_;
  NmpConfig config_;
};

/// FNV-1a hash of a candidate's gene sequence (fitness-cache key).
[[nodiscard]] std::uint64_t candidate_hash(const MappingCandidate& candidate);

}  // namespace evedge::mapper
