// End-to-end sparse-network execution benchmark: times three execution
// strategies for a 3-sparse-layer network (submanifold -> strided sparse
// conv -> submanifold) at DAVIS346 scale across event densities, on a
// DSFA-style merge batch of frames:
//
//   batch1      per-frame calls with the legacy densify/sparsify chain
//               (sparse_conv2d emits dense, dense_to_channels re-encodes)
//   batched     batched kernels, still paying the densify/sparsify
//               round-trip between the strided and submanifold layers
//   csr_chain   batched kernels chained through sparse_conv2d_csr_batch —
//               sparse end to end, no dense round-trip, shared Workspace
//
// The batched/CSR outputs are checked bitwise against the per-sample CSR
// chain (batched == batch-1 by construction) and against the legacy chain
// to 1e-4. Results go to BENCH_e2e.json (CI artifact); the bench exits
// non-zero on any parity failure.
//
// Usage: bench_e2e [output.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "nn/kernels.hpp"
#include "sparse/sparse_ops.hpp"
#include "sparse/tensor.hpp"
#include "sparse/workspace.hpp"

namespace es = evedge::sparse;
using evedge::bench::time_best_ms;

namespace {

es::SparseSample random_sample(int channels, int h, int w, double density,
                               std::uint64_t seed) {
  es::DenseTensor dense(es::TensorShape{1, channels, h, w});
  dense.fill_random(seed);
  const auto keep_every =
      density > 0.0 ? static_cast<std::size_t>(1.0 / density) : dense.size();
  std::size_t i = 0;
  for (float& v : dense.data()) {
    if (i++ % keep_every != 0) v = 0.0f;
  }
  return es::dense_to_channels(dense);
}

/// Re-encodes every sample slice of a batched dense output back into COO
/// channels (the per-layer cost CSR chaining removes from the legacy
/// strided path).
[[nodiscard]] std::vector<es::SparseSample> sparsify_batch(
    const es::DenseTensor& d) {
  std::vector<es::SparseSample> out(static_cast<std::size_t>(d.shape().n));
  const std::size_t plane = d.stride_c();
  for (int n = 0; n < d.shape().n; ++n) {
    es::SparseSample channels;
    channels.reserve(static_cast<std::size_t>(d.shape().c));
    for (int c = 0; c < d.shape().c; ++c) {
      const float* p = d.raw() + static_cast<std::size_t>(n) * d.stride_n() +
                       static_cast<std::size_t>(c) * plane;
      std::vector<es::CooEntry> entries;
      for (int y = 0; y < d.shape().h; ++y) {
        for (int x = 0; x < d.shape().w; ++x) {
          const float v = p[static_cast<std::size_t>(y) *
                                static_cast<std::size_t>(d.shape().w) +
                            static_cast<std::size_t>(x)];
          if (v != 0.0f) entries.push_back(es::CooEntry{y, x, v});
        }
      }
      channels.push_back(es::CooChannel::from_sorted_entries(
          d.shape().h, d.shape().w, std::move(entries)));
    }
    out[static_cast<std::size_t>(n)] = std::move(channels);
  }
  return out;
}

/// The 3-sparse-layer encoder under test (the regime where activations
/// stay sparse — chaining pays off before the active set densifies).
/// DAVIS346 event input: 2 channels at 260x346;
///   L1 submanifold 2->16 k3     @260x346
///   L2 sparse conv 16->32 k3s2  @130x173 (strided)
///   L3 submanifold 32->32 k3    @130x173
struct Net {
  es::Conv2dSpec l1{2, 16, 3, 1, 1};
  es::Conv2dSpec l2{16, 32, 3, 2, 1};
  es::Conv2dSpec l3{32, 32, 3, 1, 1};
  es::DenseTensor w1, w2, w3;

  Net() {
    w1 = es::DenseTensor(es::TensorShape{16, 2, 3, 3});
    w2 = es::DenseTensor(es::TensorShape{32, 16, 3, 3});
    w3 = es::DenseTensor(es::TensorShape{32, 32, 3, 3});
    w1.fill_random(41, 0.2f);
    w2.fill_random(42, 0.1f);
    w3.fill_random(43, 0.1f);
  }

  /// Legacy chain, one sample: dense round-trip after the strided layer.
  [[nodiscard]] es::SparseSample run_legacy(const es::SparseSample& in) const {
    const auto a1 = es::submanifold_conv2d(in, w1, {}, l1);
    const auto a2 = es::dense_to_channels(es::sparse_conv2d(a1, w2, {}, l2));
    return es::submanifold_conv2d(a2, w3, {}, l3);
  }

  /// CSR chain, one sample (the batch-1 reference for bit-matching).
  [[nodiscard]] es::SparseSample run_csr1(const es::SparseSample& in,
                                          es::Workspace* ws) const {
    const auto a1 = es::submanifold_conv2d(in, w1, {}, l1, nullptr, ws);
    const auto a2 = es::sparse_conv2d_csr(a1, w2, {}, l2, nullptr, ws);
    return es::submanifold_conv2d(a2, w3, {}, l3, nullptr, ws);
  }

  /// Batched kernels with the legacy densify/sparsify round-trip.
  [[nodiscard]] std::vector<es::SparseSample> run_batched_legacy(
      std::span<const es::SparseSample> in, es::Workspace* ws) const {
    const auto a1 = es::submanifold_conv2d_batch(in, w1, {}, l1, nullptr, ws);
    const auto a2 = sparsify_batch(es::sparse_conv2d_batch(a1, w2, {}, l2));
    return es::submanifold_conv2d_batch(a2, w3, {}, l3, nullptr, ws);
  }

  /// CSR-chained batched execution: sparse end to end.
  [[nodiscard]] std::vector<es::SparseSample> run_csr_batched(
      std::span<const es::SparseSample> in, es::Workspace* ws) const {
    const auto a1 = es::submanifold_conv2d_batch(in, w1, {}, l1, nullptr, ws);
    const auto a2 = es::sparse_conv2d_csr_batch(a1, w2, {}, l2, nullptr, ws);
    return es::submanifold_conv2d_batch(a2, w3, {}, l3, nullptr, ws);
  }
};

struct Result {
  double density = 0.0;
  int batch = 0;
  double batch1_ms = 0.0;
  double batched_ms = 0.0;
  double csr_ms = 0.0;
  double bit_diff = 0.0;     ///< batched CSR vs per-sample CSR (must be 0)
  double legacy_diff = 0.0;  ///< CSR chain vs legacy chain (<= 1e-4)

  [[nodiscard]] double speedup_batched() const {
    return batched_ms > 0.0 ? batch1_ms / batched_ms : 0.0;
  }
  [[nodiscard]] double speedup_csr() const {
    return csr_ms > 0.0 ? batch1_ms / csr_ms : 0.0;
  }
};

[[nodiscard]] bool write_json(const std::vector<Result>& results,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"threads\": %d,\n  \"network\": "
               "\"subm2x16k3 -> sparse16x32k3s2 -> subm32x32k3 @260x346\",\n"
               "  \"results\": [\n",
               evedge::core::parallel_thread_count());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"density\": %.4f, \"batch\": %d, \"batch1_ms\": %.4f, "
        "\"batched_ms\": %.4f, \"csr_ms\": %.4f, \"speedup_batched\": %.2f, "
        "\"speedup_csr\": %.2f, \"bit_diff\": %.3g, \"legacy_diff\": "
        "%.3g}%s\n",
        r.density, r.batch, r.batch1_ms, r.batched_ms, r.csr_ms,
        r.speedup_batched(), r.speedup_csr(), r.bit_diff, r.legacy_diff,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

[[nodiscard]] double sample_diff(const es::SparseSample& a,
                                 const es::SparseSample& b) {
  return es::max_abs_diff(es::channels_to_dense(a), es::channels_to_dense(b));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_e2e.json";
  constexpr int kBatch = 4;
  constexpr int kH = 260;
  constexpr int kW = 346;

  Net net;
  std::vector<Result> results;

  std::printf("e2e batched/CSR benchmark (threads=%d, batch=%d)\n",
              evedge::core::parallel_thread_count(), kBatch);
  std::printf("%8s %10s %10s %10s %9s %9s %10s %10s\n", "density",
              "batch1_ms", "batched_ms", "csr_ms", "b_speed", "c_speed",
              "bit_diff", "leg_diff");

  bool parity_ok = true;
  for (const double density : {0.005, 0.01, 0.02, 0.05}) {
    std::vector<es::SparseSample> batch;
    for (int n = 0; n < kBatch; ++n) {
      batch.push_back(random_sample(
          2, kH, kW, density, 100 + static_cast<std::uint64_t>(n)));
    }

    es::Workspace ws;
    Result r;
    r.density = density;
    r.batch = kBatch;
    r.batch1_ms = time_best_ms(
        [&] {
          for (const es::SparseSample& s : batch) (void)net.run_legacy(s);
        },
        5);
    r.batched_ms =
        time_best_ms([&] { (void)net.run_batched_legacy(batch, &ws); }, 5);
    r.csr_ms = time_best_ms([&] { (void)net.run_csr_batched(batch, &ws); }, 5);

    // Parity: batched CSR chain must bit-match the per-sample CSR chain,
    // and stay within 1e-4 of the legacy densify/sparsify chain.
    const auto csr_batched = net.run_csr_batched(batch, &ws);
    for (int n = 0; n < kBatch; ++n) {
      const auto one =
          net.run_csr1(batch[static_cast<std::size_t>(n)], &ws);
      r.bit_diff = std::max(
          r.bit_diff, sample_diff(csr_batched[static_cast<std::size_t>(n)],
                                  one));
      const auto legacy = net.run_legacy(batch[static_cast<std::size_t>(n)]);
      r.legacy_diff = std::max(
          r.legacy_diff,
          sample_diff(csr_batched[static_cast<std::size_t>(n)], legacy));
    }
    if (r.bit_diff != 0.0 || r.legacy_diff > 1e-4) parity_ok = false;

    std::printf("%8.4f %10.3f %10.3f %10.3f %8.2fx %8.2fx %10.3g %10.3g\n",
                r.density, r.batch1_ms, r.batched_ms, r.csr_ms,
                r.speedup_batched(), r.speedup_csr(), r.bit_diff,
                r.legacy_diff);
    std::fflush(stdout);
    results.push_back(r);
  }

  const bool wrote = write_json(results, out_path);
  if (!parity_ok) {
    std::fprintf(stderr,
                 "parity failure: batched CSR chain diverged (see table)\n");
    return 1;
  }
  return wrote ? 0 : 1;
}
