#include "hw/profiler.hpp"

#include <algorithm>
#include <stdexcept>

namespace evedge::hw {

bool supports_layer(const ProcessingElement& pe, nn::LayerKind kind) {
  if (pe.kind != PeKind::kDla) return true;
  switch (kind) {
    case nn::LayerKind::kSpikingConv:
    case nn::LayerKind::kAdaptiveSpikingConv:
    case nn::LayerKind::kTransposedConv:
      return false;
    default:
      return true;
  }
}

TaskProfile profile_task(const nn::NetworkSpec& spec,
                         const Platform& platform,
                         const std::vector<double>* node_densities) {
  platform.validate();
  if (node_densities != nullptr &&
      node_densities->size() != spec.graph.size()) {
    throw std::invalid_argument("profile_task: density size mismatch");
  }
  TaskProfile profile;
  profile.nodes.reserve(spec.graph.size());
  for (const nn::LayerNode& node : spec.graph.nodes()) {
    NodeProfile np;
    np.node_id = node.id;
    np.mappable = node.spec.kind != nn::LayerKind::kInput &&
                  node.spec.kind != nn::LayerKind::kOutput;
    np.output_elements = node.spec.output_elements();
    np.domain = nn::domain_of(node.spec.kind);

    LayerWorkload workload = LayerWorkload::from_layer(node.spec);
    if (node_densities != nullptr && !node.parents.empty()) {
      // Input density of this node = measured output density of its
      // first parent.
      workload.input_density = std::clamp(
          (*node_densities)[static_cast<std::size_t>(
              node.parents.front())],
          0.0, 1.0);
    }
    // Spiking layers execute once per event-bin timestep per inference.
    const double repeats =
        np.domain == nn::Domain::kSnn ? spec.timesteps : 1;

    np.time_us.resize(platform.pes.size());
    for (const ProcessingElement& pe : platform.pes) {
      for (const Precision p : quant::kAllPrecisions) {
        double t = std::numeric_limits<double>::infinity();
        if (np.mappable && pe.supports(p) &&
            supports_layer(pe, node.spec.kind)) {
          const Route route = node_densities != nullptr
                                  ? best_route(pe, p, workload)
                                  : Route::kDense;
          t = repeats * layer_latency_us(pe, p, workload, route);
        } else if (!np.mappable) {
          t = 0.0;  // inputs/outputs cost nothing themselves
        }
        np.time_us[static_cast<std::size_t>(pe.id)]
                  [static_cast<std::size_t>(p)] = t;
      }
    }
    profile.nodes.push_back(std::move(np));
  }
  return profile;
}

std::vector<TaskProfile> profile_tasks(
    const std::vector<nn::NetworkSpec>& specs, const Platform& platform) {
  std::vector<TaskProfile> profiles;
  profiles.reserve(specs.size());
  for (const nn::NetworkSpec& spec : specs) {
    profiles.push_back(profile_task(spec, platform));
  }
  return profiles;
}

}  // namespace evedge::hw
