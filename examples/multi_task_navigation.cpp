// Multi-task navigation scenario (paper §5's mixed configuration): an
// autonomous platform concurrently runs optical flow (Fusion-FlowNet),
// segmentation (HALSIE), object tracking (DOTIE) and depth estimation
// (HidalgoDepth). The Network Mapper searches PE + precision assignments
// for all four; we print the resulting placement, the schedule Gantt and
// the comparison against the round-robin baselines.
//
// Build & run:  ./build/examples/multi_task_navigation

#include <cstdio>
#include <map>

#include "hw/profiler.hpp"
#include "mapper/baselines.hpp"
#include "mapper/nmp.hpp"
#include "nn/zoo.hpp"
#include "quant/accuracy.hpp"
#include "sched/scheduler.hpp"

using namespace evedge;

int main() {
  const auto platform = hw::xavier_agx();
  const auto config = nn::multi_task_mixed();

  std::vector<nn::NetworkSpec> specs;
  for (const auto id : config.networks) {
    specs.push_back(nn::build_network(id, nn::ZooConfig::full_scale()));
  }
  const auto profiles = hw::profile_tasks(specs, platform);

  // Accuracy surrogates on reduced-scale functional twins.
  std::vector<quant::AccuracyEvaluator> evaluators;
  std::vector<quant::SensitivityModel> sensitivities;
  for (const auto id : config.networks) {
    const auto small = nn::build_network(id, nn::ZooConfig::test_scale());
    evaluators.emplace_back(small, 7,
                            quant::make_validation_set(small, 2, 21));
    sensitivities.emplace_back(evaluators.back(), 1);
  }
  mapper::AccuracyFn accuracy = [&sensitivities](
                                    int task, const sched::TaskMapping& m) {
    quant::PrecisionMap p;
    for (std::size_t n = 0; n < m.nodes.size(); ++n) {
      if (m.nodes[n].pe >= 0) p[static_cast<int>(n)] = m.nodes[n].precision;
    }
    return sensitivities[static_cast<std::size_t>(task)].predict(p);
  };

  mapper::NmpConfig nmp_cfg;
  nmp_cfg.population = 24;
  nmp_cfg.generations = 24;
  mapper::NetworkMapper nmp(specs, profiles, platform, accuracy, nmp_cfg);
  const auto result = nmp.run();

  std::printf("NMP mapping for '%s' (%zu tasks):\n", config.name.c_str(),
              specs.size());
  for (std::size_t t = 0; t < specs.size(); ++t) {
    std::map<std::string, int> placement;
    for (const auto& node : result.best.tasks[t].nodes) {
      if (node.pe >= 0) {
        placement[platform.pe(node.pe).name + "/" +
                  quant::to_string(node.precision)]++;
      }
    }
    std::printf("  %-18s dA=%.4f :", specs[t].name.c_str(),
                result.task_degradation[t]);
    for (const auto& [key, count] : placement) {
      std::printf(" %s x%d", key.c_str(), count);
    }
    std::printf("\n");
  }

  std::printf("\nschedule (A=%s B=%s C=%s D=%s, ~ = transfers):\n",
              specs[0].name.c_str(), specs[1].name.c_str(),
              specs[2].name.c_str(), specs[3].name.c_str());
  std::printf("%s",
              sched::format_gantt(result.best_schedule, platform).c_str());

  const auto rr_net = sched::schedule(
      specs, profiles,
      mapper::rr_network_candidate(specs, profiles, platform), platform);
  const auto rr_layer = sched::schedule(
      specs, profiles,
      mapper::rr_layer_candidate(specs, profiles, platform), platform);
  std::printf(
      "\nmax task latency: NMP %.1f ms | RR-Layer %.1f ms (%.2fx) | "
      "RR-Network %.1f ms (%.2fx)\n",
      result.best_schedule.max_task_latency_us / 1000.0,
      rr_layer.max_task_latency_us / 1000.0,
      rr_layer.max_task_latency_us /
          result.best_schedule.max_task_latency_us,
      rr_net.max_task_latency_us / 1000.0,
      rr_net.max_task_latency_us /
          result.best_schedule.max_task_latency_us);
  std::printf("energy: NMP %.1f mJ | RR-Network %.1f mJ\n",
              result.best_schedule.energy_mj, rr_net.energy_mj);
  return 0;
}
