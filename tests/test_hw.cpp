// Tests for the hardware platform model: Xavier preset invariants, the
// roofline latency model's monotonicity properties, energy accounting and
// the profiling pass.

#include <gtest/gtest.h>

#include <cmath>

#include "hw/energy_model.hpp"
#include "hw/latency_model.hpp"
#include "hw/platform.hpp"
#include "hw/profiler.hpp"
#include "nn/zoo.hpp"

namespace eh = evedge::hw;
namespace en = evedge::nn;
namespace eq = evedge::quant;

namespace {

eh::LayerWorkload conv_workload(std::size_t macs = 10'000'000,
                                std::size_t elems = 100'000) {
  eh::LayerWorkload w;
  w.macs = macs;
  w.input_elements = elems;
  w.output_elements = elems;
  w.weight_elements = 4'800;
  w.domain = en::Domain::kAnn;
  w.input_density = 1.0;
  return w;
}

}  // namespace

// ---------------------------------------------------------------- platform

TEST(Platform, XavierPresetIsValid) {
  const auto p = eh::xavier_agx();
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.pe_count(), 4);  // CPU + GPU + 2x DLA
  EXPECT_EQ(p.pe(p.first_pe(eh::PeKind::kGpu)).kind, eh::PeKind::kGpu);
}

TEST(Platform, DlaHasNoFp32Path) {
  const auto p = eh::xavier_agx();
  const auto& dla = p.pe(p.first_pe(eh::PeKind::kDla));
  EXPECT_FALSE(dla.supports(eq::Precision::kFp32));
  EXPECT_TRUE(dla.supports(eq::Precision::kFp16));
  EXPECT_TRUE(dla.supports(eq::Precision::kInt8));
  EXPECT_FALSE(dla.supports_sparse);
}

TEST(Platform, GpuIsFastestDenseEngine) {
  const auto p = eh::xavier_agx();
  const auto w = conv_workload();
  const double gpu = eh::layer_latency_us(
      p.pe(p.first_pe(eh::PeKind::kGpu)), eq::Precision::kFp16, w);
  const double cpu = eh::layer_latency_us(
      p.pe(p.first_pe(eh::PeKind::kCpu)), eq::Precision::kFp16, w);
  EXPECT_LT(gpu, cpu);
}

TEST(Platform, TransferTimeScalesWithBytes) {
  const auto p = eh::xavier_agx();
  EXPECT_DOUBLE_EQ(eh::transfer_time_us(p, 1, 1, 1e6), 0.0);  // same PE
  const double small = eh::transfer_time_us(p, 0, 1, 1e3);
  const double large = eh::transfer_time_us(p, 0, 1, 1e6);
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0.0);  // sync overhead even for tiny transfers
}

// ------------------------------------------------------------ latency model

TEST(Latency, UnsupportedPrecisionThrows) {
  const auto p = eh::xavier_agx();
  const auto& dla = p.pe(p.first_pe(eh::PeKind::kDla));
  EXPECT_THROW((void)eh::layer_latency_us(dla, eq::Precision::kFp32,
                                          conv_workload()),
               std::invalid_argument);
}

TEST(Latency, SparseRouteNeedsSparseSupport) {
  const auto p = eh::xavier_agx();
  const auto& dla = p.pe(p.first_pe(eh::PeKind::kDla));
  EXPECT_THROW((void)eh::layer_latency_us(dla, eq::Precision::kFp16,
                                          conv_workload(),
                                          eh::Route::kSparse),
               std::invalid_argument);
}

TEST(Latency, MonotoneInMacs) {
  const auto p = eh::xavier_agx();
  const auto& gpu = p.pe(p.first_pe(eh::PeKind::kGpu));
  const double t1 = eh::layer_latency_us(gpu, eq::Precision::kFp32,
                                         conv_workload(1'000'000));
  const double t2 = eh::layer_latency_us(gpu, eq::Precision::kFp32,
                                         conv_workload(100'000'000));
  EXPECT_GT(t2, t1);
}

TEST(Latency, LowerPrecisionIsFasterOnGpu) {
  const auto p = eh::xavier_agx();
  const auto& gpu = p.pe(p.first_pe(eh::PeKind::kGpu));
  const auto w = conv_workload(500'000'000);
  const double fp32 = eh::layer_latency_us(gpu, eq::Precision::kFp32, w);
  const double fp16 = eh::layer_latency_us(gpu, eq::Precision::kFp16, w);
  const double int8 = eh::layer_latency_us(gpu, eq::Precision::kInt8, w);
  EXPECT_GT(fp32, fp16);
  EXPECT_GT(fp16, int8);
}

TEST(Latency, SpikingLayersSlowerThanAnnOnGpu) {
  // The paper's observation: SNNs have the longest execution times on
  // these platforms.
  const auto p = eh::xavier_agx();
  const auto& gpu = p.pe(p.first_pe(eh::PeKind::kGpu));
  auto ann = conv_workload(100'000'000);
  auto snn = ann;
  snn.domain = en::Domain::kSnn;
  EXPECT_GT(eh::layer_latency_us(gpu, eq::Precision::kFp32, snn),
            eh::layer_latency_us(gpu, eq::Precision::kFp32, ann));
}

TEST(Latency, SparseRouteWinsAtLowDensityOnly) {
  const auto p = eh::xavier_agx();
  const auto& gpu = p.pe(p.first_pe(eh::PeKind::kGpu));
  auto sparse_w = conv_workload(200'000'000);
  sparse_w.input_density = 0.02;
  EXPECT_EQ(eh::best_route(gpu, eq::Precision::kFp32, sparse_w),
            eh::Route::kSparse);
  auto dense_w = conv_workload(200'000'000);
  dense_w.input_density = 0.9;
  EXPECT_EQ(eh::best_route(gpu, eq::Precision::kFp32, dense_w),
            eh::Route::kDense);
}

TEST(Latency, BatchAmortizesLaunchOverhead) {
  const auto p = eh::xavier_agx();
  const auto& gpu = p.pe(p.first_pe(eh::PeKind::kGpu));
  const auto w = conv_workload(5'000'000);
  const double single = eh::layer_latency_us(gpu, eq::Precision::kFp32, w);
  const double batched =
      eh::layer_latency_us(gpu, eq::Precision::kFp32, w, eh::Route::kDense,
                           4);
  EXPECT_LT(batched, 4.0 * single);
}

TEST(Latency, EncodeOverheadPositiveAndScales) {
  const auto p = eh::xavier_agx();
  const auto& gpu = p.pe(p.first_pe(eh::PeKind::kGpu));
  const double small =
      eh::encode_to_sparse_us(gpu, 10'000, eq::Precision::kFp32);
  const double large =
      eh::encode_to_sparse_us(gpu, 10'000'000, eq::Precision::kFp32);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

// ---------------------------------------------------------------- energy

TEST(Energy, BusyPlusIdleAccounting) {
  const auto p = eh::xavier_agx();
  eh::EnergyAccumulator acc(p);
  const int gpu = p.first_pe(eh::PeKind::kGpu);
  acc.add_busy(gpu, eq::Precision::kFp32, 1000.0);  // 1 ms at 18 W = 18 mJ
  EXPECT_NEAR(acc.busy_mj(), 18.0, 1e-9);
  EXPECT_NEAR(acc.busy_us(gpu), 1000.0, 1e-9);
  // Idle: all four PEs idle for the remaining makespan.
  const double total = acc.total_mj(2000.0);
  EXPECT_GT(total, acc.busy_mj());
}

TEST(Energy, TransferEnergyCounts) {
  const auto p = eh::xavier_agx();
  eh::EnergyAccumulator acc(p);
  acc.add_transfer(1e6);  // 1 MB at 120 pJ/B = 0.12 mJ
  EXPECT_NEAR(acc.transfer_mj(), 0.12, 1e-9);
}

TEST(Energy, LowerPrecisionCostsLessOnGpu) {
  const auto p = eh::xavier_agx();
  eh::EnergyAccumulator a(p);
  eh::EnergyAccumulator b(p);
  const int gpu = p.first_pe(eh::PeKind::kGpu);
  a.add_busy(gpu, eq::Precision::kFp32, 1000.0);
  b.add_busy(gpu, eq::Precision::kInt8, 1000.0);
  EXPECT_GT(a.busy_mj(), b.busy_mj());
}

TEST(Energy, RejectsNegativeDurations) {
  const auto p = eh::xavier_agx();
  eh::EnergyAccumulator acc(p);
  EXPECT_THROW(acc.add_busy(0, eq::Precision::kFp32, -1.0),
               std::invalid_argument);
}

// --------------------------------------------------------------- profiler

TEST(Profiler, TablesCoverAllNodesAndPes) {
  const auto platform = eh::xavier_agx();
  const auto spec = en::build_network(en::NetworkId::kSpikeFlowNet,
                                      en::ZooConfig::test_scale());
  const auto profile = eh::profile_task(spec, platform);
  ASSERT_EQ(profile.nodes.size(), spec.graph.size());
  for (const auto& np : profile.nodes) {
    ASSERT_EQ(np.time_us.size(),
              static_cast<std::size_t>(platform.pe_count()));
    if (!np.mappable) continue;
    // GPU FP32 must always be available (the all-GPU baseline exists).
    EXPECT_TRUE(np.supported(platform.first_pe(eh::PeKind::kGpu),
                             eq::Precision::kFp32));
    // DLA FP32 must not.
    EXPECT_FALSE(np.supported(platform.first_pe(eh::PeKind::kDla),
                              eq::Precision::kFp32));
  }
}

TEST(Profiler, SnnLayerTimesIncludeTimestepRepeats) {
  const auto platform = eh::xavier_agx();
  // DOTIE: single spiking conv; its profiled time must scale with the
  // timestep count.
  auto cfg = en::ZooConfig::test_scale();
  cfg.n_bins = 2;
  const auto spec2 = en::build_network(en::NetworkId::kDotie, cfg);
  cfg.n_bins = 8;
  const auto spec8 = en::build_network(en::NetworkId::kDotie, cfg);
  const auto p2 = eh::profile_task(spec2, platform);
  const auto p8 = eh::profile_task(spec8, platform);
  const int gpu = platform.first_pe(eh::PeKind::kGpu);
  // Node 1 is the spiking conv in both.
  const double t2 = p2.node(1).time(gpu, eq::Precision::kFp32);
  const double t8 = p8.node(1).time(gpu, eq::Precision::kFp32);
  EXPECT_NEAR(t8 / t2, 4.0, 0.2);
}

TEST(Profiler, InputOutputNodesAreFreeAndUnmappable) {
  const auto platform = eh::xavier_agx();
  const auto spec = en::build_network(en::NetworkId::kEvFlowNet,
                                      en::ZooConfig::test_scale());
  const auto profile = eh::profile_task(spec, platform);
  for (const int id : spec.graph.input_ids()) {
    EXPECT_FALSE(profile.node(id).mappable);
    EXPECT_DOUBLE_EQ(profile.node(id).time(0, eq::Precision::kFp32), 0.0);
  }
}
