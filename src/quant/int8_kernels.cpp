#include "quant/int8_kernels.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/parallel.hpp"

namespace evedge::quant {

using sparse::conv_out_extent;
using sparse::CooEntry;
using sparse::GatherGeometry;
using sparse::TensorShape;
using sparse::validate_conv_spec;

// Hot inner kernels are compiled twice on x86-64 ELF targets — an AVX2
// clone and the baseline — with glibc ifunc dispatch picking at load
// time. The int16 widening multiply-adds double their lane count under
// AVX2; every other platform transparently gets the default clone.
// Sanitizer builds drop the clones: ifunc resolvers run before the
// TSan/ASan runtimes initialize, so an instrumented resolver segfaults
// the process at load (the CI ThreadSanitizer job builds this way).
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_THREAD__) &&         \
    !defined(__SANITIZE_ADDRESS__)
#define EVEDGE_SIMD_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define EVEDGE_SIMD_CLONES
#endif

namespace {

/// Exact int32 accumulation bound: patch * 127^2 must stay below 2^31.
constexpr std::size_t kMaxPatch = (std::size_t{1} << 31) / (127u * 127u);

void validate_activation_inputs(const DenseTensor& input,
                                const Int8ConvWeights& weights,
                                std::span<const float> bias,
                                const char* who) {
  if (input.shape().c != weights.spec.in_channels) {
    throw std::invalid_argument(std::string(who) +
                                ": input channel mismatch");
  }
  if (!bias.empty() &&
      static_cast<int>(bias.size()) != weights.spec.out_channels) {
    throw std::invalid_argument(std::string(who) + ": bias size mismatch");
  }
}

/// Quantizes `count` floats into the widened int16 compute grid.
EVEDGE_SIMD_CLONES
void quantize_slice(const float* src, std::size_t count, Int8Scale scale,
                    std::int16_t* dst) {
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] = static_cast<std::int16_t>(scale.quantize(src[i]));
  }
}

/// Transposed int16 im2col: row p of the [pixels][padded] matrix holds
/// the quantized patch output pixel p sees, in the same [ic][ky][kx]
/// order as one `wide` weight row (zero-padded tail) — out[oc][p] is
/// then a contiguous fixed-trip dot product.
void im2col_transposed(const std::int16_t* qin, const TensorShape& is,
                       const Conv2dSpec& spec, int out_h, int out_w,
                       std::size_t padded, std::int16_t* colT) {
  const std::size_t in_plane = static_cast<std::size_t>(is.h) *
                               static_cast<std::size_t>(is.w);
  const std::size_t patch = static_cast<std::size_t>(spec.in_channels) *
                            static_cast<std::size_t>(spec.kernel) *
                            static_cast<std::size_t>(spec.kernel);
  // Interior x range: every kx tap in bounds. Border columns (at most
  // `padding / stride + 1` per side) take the checked path.
  int x_lo = 0;
  while (x_lo < out_w && x_lo * spec.stride - spec.padding < 0) ++x_lo;
  int x_hi = out_w;  // exclusive
  while (x_hi > x_lo &&
         (x_hi - 1) * spec.stride - spec.padding + spec.kernel > is.w) {
    --x_hi;
  }

  core::parallel_for(0, out_h, [&](int oy) {
    const int iy0 = oy * spec.stride - spec.padding;
    const bool y_interior = iy0 >= 0 && iy0 + spec.kernel <= is.h;
    std::int16_t* dst = colT + static_cast<std::size_t>(oy) *
                                   static_cast<std::size_t>(out_w) * padded;
    const auto checked_pixel = [&](int ox) {
      const int ix0 = ox * spec.stride - spec.padding;
      for (int ic = 0; ic < spec.in_channels; ++ic) {
        const std::int16_t* in_c =
            qin + static_cast<std::size_t>(ic) * in_plane;
        for (int ky = 0; ky < spec.kernel; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= is.h) {
            std::fill(dst, dst + spec.kernel, std::int16_t{0});
            dst += spec.kernel;
            continue;
          }
          const std::int16_t* row =
              in_c + static_cast<std::size_t>(iy) *
                         static_cast<std::size_t>(is.w);
          for (int kx = 0; kx < spec.kernel; ++kx) {
            const int ix = ix0 + kx;
            *dst++ = (ix < 0 || ix >= is.w) ? std::int16_t{0} : row[ix];
          }
        }
      }
      std::fill(dst, dst + (padded - patch), std::int16_t{0});
      dst += padded - patch;
    };

    int ox = 0;
    for (; ox < (y_interior ? x_lo : out_w); ++ox) checked_pixel(ox);
    if (y_interior) {
      // Interior run: no bounds checks; each kx row segment moves as
      // 8-byte chunks (one load/store per 4 lanes; the ≤3-lane overrun
      // is absorbed by the callers' guard lanes on qin/qcol and
      // overwritten by the next segment). Dispatched on the kernel
      // extent so the per-channel copy nest fully unrolls. The base
      // offset is formed from non-negative indices only (ix0 >= 0 for
      // every interior pixel) — no before-the-buffer intermediate
      // pointer.
      const std::int16_t* row0 = qin + static_cast<std::size_t>(iy0) *
                                           static_cast<std::size_t>(is.w);
      const auto interior_run = [&]<int K>() {
        for (; ox < x_hi; ++ox) {
          const std::int16_t* base =
              row0 + static_cast<std::size_t>(ox * spec.stride -
                                              spec.padding);
          for (int ic = 0; ic < spec.in_channels; ++ic) {
            const std::int16_t* in_c = base;
            for (int ky = 0; ky < K; ++ky) {
              for (int kx = 0; kx < K; kx += 4) {
                std::memcpy(dst + kx, in_c + kx, 8);
              }
              dst += K;
              in_c += is.w;
            }
            base += in_plane;
          }
          std::fill(dst, dst + (padded - patch), std::int16_t{0});
          dst += padded - patch;
        }
      };
      switch (spec.kernel) {
        case 1: interior_run.operator()<1>(); break;
        case 3: interior_run.operator()<3>(); break;
        case 5: interior_run.operator()<5>(); break;
        case 7: interior_run.operator()<7>(); break;
        default:
          for (; ox < x_hi; ++ox) {
            const std::int16_t* base =
                row0 + static_cast<std::size_t>(ox * spec.stride -
                                                spec.padding);
            for (int ic = 0; ic < spec.in_channels; ++ic) {
              const std::int16_t* in_c = base;
              for (int ky = 0; ky < spec.kernel; ++ky) {
                for (int kx = 0; kx < spec.kernel; kx += 4) {
                  std::memcpy(dst + kx, in_c + kx, 8);
                }
                dst += spec.kernel;
                in_c += is.w;
              }
              base += in_plane;
            }
            std::fill(dst, dst + (padded - patch), std::int16_t{0});
            dst += padded - patch;
          }
      }
      for (; ox < out_w; ++ox) checked_pixel(ox);
    }
  });
}

/// One pixel range of the output-channel-blocked dot kernel:
/// out[oc][p] = bias[oc] + dot(w[oc][:], colT[p][:]) * (sx * wscale[oc]),
/// int32 accumulation. Four channels share each column-row read; the
/// fixed-trip int16 inner loops vectorize to widening multiply-adds.
/// Every int8 kernel forms the dequantization factor as sx * wscale[oc]
/// in exactly this order, so dense and sparse results agree bitwise.
EVEDGE_SIMD_CLONES
void dot_gemm_chunk(const std::int16_t* colT, const std::int16_t* w,
                    std::size_t patch, std::size_t pixels, std::size_t p0,
                    std::size_t p1, int oc_count, const float* bias,
                    const float* wscale, float sx, float* out) {
  for (std::size_t p = p0; p < p1; ++p) {
    const std::int16_t* c = colT + p * patch;
    int oc = 0;
    for (; oc + 4 <= oc_count; oc += 4) {
      const std::int16_t* w0 = w + static_cast<std::size_t>(oc) * patch;
      const std::int16_t* w1 = w0 + patch;
      const std::int16_t* w2 = w1 + patch;
      const std::int16_t* w3 = w2 + patch;
      std::int32_t a0 = 0;
      std::int32_t a1 = 0;
      std::int32_t a2 = 0;
      std::int32_t a3 = 0;
      for (std::size_t r = 0; r < patch; ++r) {
        const std::int32_t cv = c[r];
        a0 += w0[r] * cv;
        a1 += w1[r] * cv;
        a2 += w2[r] * cv;
        a3 += w3[r] * cv;
      }
      const std::size_t o = static_cast<std::size_t>(oc) * pixels + p;
      const float b0 = bias == nullptr ? 0.0f : bias[oc];
      const float b1 = bias == nullptr ? 0.0f : bias[oc + 1];
      const float b2 = bias == nullptr ? 0.0f : bias[oc + 2];
      const float b3 = bias == nullptr ? 0.0f : bias[oc + 3];
      out[o] = b0 + static_cast<float>(a0) * (sx * wscale[oc]);
      out[o + pixels] = b1 + static_cast<float>(a1) * (sx * wscale[oc + 1]);
      out[o + 2 * pixels] =
          b2 + static_cast<float>(a2) * (sx * wscale[oc + 2]);
      out[o + 3 * pixels] =
          b3 + static_cast<float>(a3) * (sx * wscale[oc + 3]);
    }
    for (; oc < oc_count; ++oc) {
      const std::int16_t* wr = w + static_cast<std::size_t>(oc) * patch;
      std::int32_t acc = 0;
      for (std::size_t r = 0; r < patch; ++r) {
        acc += wr[r] * static_cast<std::int32_t>(c[r]);
      }
      const float b = bias == nullptr ? 0.0f : bias[oc];
      out[static_cast<std::size_t>(oc) * pixels + p] =
          b + static_cast<float>(acc) * (sx * wscale[oc]);
    }
  }
}

void dot_gemm(const std::int16_t* colT, const std::int16_t* w,
              std::size_t patch, std::size_t pixels, int oc_count,
              std::span<const float> bias, const float* wscale, float sx,
              float* out) {
  constexpr std::size_t kPixChunk = 2048;
  const int chunks = static_cast<int>((pixels + kPixChunk - 1) / kPixChunk);
  const float* bias_ptr = bias.empty() ? nullptr : bias.data();
  core::parallel_for(0, chunks, [&](int ck) {
    const std::size_t p0 = static_cast<std::size_t>(ck) * kPixChunk;
    const std::size_t p1 = std::min(pixels, p0 + kPixChunk);
    dot_gemm_chunk(colT, w, patch, pixels, p0, p1, oc_count, bias_ptr,
                   wscale, sx, out);
  });
}

}  // namespace

Int8ConvWeights quantize_conv_weights(const DenseTensor& weights,
                                      const Conv2dSpec& spec,
                                      WeightGranularity granularity) {
  validate_conv_spec(spec);
  const TensorShape& ws = weights.shape();
  if (ws.n != spec.out_channels || ws.c != spec.in_channels ||
      ws.h != spec.kernel || ws.w != spec.kernel) {
    throw std::invalid_argument("quantize_conv_weights: shape mismatch");
  }
  const std::size_t patch = weights.stride_n();
  if (patch >= kMaxPatch) {
    throw std::invalid_argument(
        "quantize_conv_weights: patch too large for exact int32 "
        "accumulation (" +
        std::to_string(patch) + " taps)");
  }
  const auto oc_count = static_cast<std::size_t>(spec.out_channels);

  Int8ConvWeights out;
  out.spec = spec;
  out.patch = patch;
  // Pad room must also absorb the im2col interior path's chunked-copy
  // overrun (up to round_up(k,4)-k lanes past the final kx segment), so
  // an overrun can never cross into the next pixel's column row — that
  // row may belong to another worker.
  const std::size_t chunk_overrun =
      (4u - static_cast<std::size_t>(spec.kernel) % 4u) % 4u;
  out.padded_patch = (patch + chunk_overrun + 7u) & ~std::size_t{7};
  out.q.resize(oc_count * patch);
  out.wide.assign(oc_count * out.padded_patch, 0);
  out.packed.resize(oc_count * patch);
  out.scale.resize(oc_count);
  out.fake = DenseTensor(ws);

  const float* w = weights.raw();
  const Int8Scale tensor_scale = Int8Scale::for_range(
      max_abs(std::span<const float>(w, oc_count * patch)));
  float* fake = out.fake.raw();
  for (std::size_t oc = 0; oc < oc_count; ++oc) {
    const float* src = w + oc * patch;
    const Int8Scale s =
        granularity == WeightGranularity::kPerTensor
            ? tensor_scale
            : Int8Scale::for_range(
                  max_abs(std::span<const float>(src, patch)));
    out.scale[oc] = s.scale;
    for (std::size_t r = 0; r < patch; ++r) {
      const int qv = s.quantize(src[r]);
      out.q[oc * patch + r] = static_cast<std::int8_t>(qv);
      out.wide[oc * out.padded_patch + r] = static_cast<std::int16_t>(qv);
      out.packed[r * oc_count + oc] = static_cast<std::int16_t>(qv);
      fake[oc * patch + r] = static_cast<float>(qv) * s.scale;
    }
  }
  return out;
}

void quantize_activations_reference(const DenseTensor& input, Int8Scale scale,
                                    DenseTensor& out) {
  if (&out != &input) out = input;
  for (float& v : out.data()) v = scale.apply(v);
}

void int8_conv2d_into(const DenseTensor& input, const Int8ConvWeights& weights,
                      std::span<const float> bias, Int8Scale input_scale,
                      DenseTensor& out, Workspace* workspace) {
  validate_activation_inputs(input, weights, bias, "int8_conv2d");
  if (&out == &input) {
    throw std::invalid_argument("int8_conv2d: out must not alias input");
  }
  const Conv2dSpec& spec = weights.spec;
  const TensorShape& is = input.shape();
  const int out_h = conv_out_extent(is.h, spec.kernel, spec.stride,
                                    spec.padding);
  const int out_w = conv_out_extent(is.w, spec.kernel, spec.stride,
                                    spec.padding);
  out.reset(TensorShape{is.n, spec.out_channels, out_h, out_w});

  Workspace local;
  sparse::ConvScratch& s =
      (workspace != nullptr ? *workspace : local).scratch(0);
  const std::size_t sample = input.stride_n();
  const std::size_t pixels =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
  // +8 guard lanes: the interior im2col path copies row segments in
  // 8-byte chunks and may read/write up to 3 lanes past the last one.
  // The qin guard lanes are zeroed so those reads never touch
  // uninitialized memory (the copied-in garbage lands in colT pad lanes
  // that are re-zeroed before the dot kernel reads them).
  std::int16_t* qin = s.qin_buffer(sample + 8);
  std::fill(qin + sample, qin + sample + 8, std::int16_t{0});
  std::int16_t* colT = s.qcol_buffer(weights.padded_patch * pixels + 8);

  for (int n = 0; n < is.n; ++n) {
    quantize_slice(input.raw() + static_cast<std::size_t>(n) * sample, sample,
                   input_scale, qin);
    im2col_transposed(qin, is, spec, out_h, out_w, weights.padded_patch,
                      colT);
    dot_gemm(colT, weights.wide.data(), weights.padded_patch, pixels,
             spec.out_channels, bias, weights.scale.data(),
             input_scale.scale,
             out.raw() + static_cast<std::size_t>(n) * out.stride_n());
  }
}

DenseTensor int8_conv2d(const DenseTensor& input,
                        const Int8ConvWeights& weights,
                        std::span<const float> bias, Int8Scale input_scale,
                        Workspace* workspace) {
  DenseTensor out;
  int8_conv2d_into(input, weights, bias, input_scale, out, workspace);
  return out;
}

void int8_transposed_conv2d_into(const DenseTensor& input,
                                 const Int8ConvWeights& weights,
                                 std::span<const float> bias,
                                 Int8Scale input_scale, DenseTensor& out,
                                 Workspace* workspace) {
  validate_activation_inputs(input, weights, bias, "int8_tconv2d");
  if (&out == &input) {
    throw std::invalid_argument("int8_tconv2d: out must not alias input");
  }
  const Conv2dSpec& spec = weights.spec;
  const TensorShape& is = input.shape();
  const int out_h =
      (is.h - 1) * spec.stride - 2 * spec.padding + spec.kernel;
  const int out_w =
      (is.w - 1) * spec.stride - 2 * spec.padding + spec.kernel;
  if (out_h <= 0 || out_w <= 0) {
    throw std::invalid_argument("int8_tconv2d: output extent <= 0");
  }
  out.reset(TensorShape{is.n, spec.out_channels, out_h, out_w});

  Workspace local;
  sparse::ConvScratch& s =
      (workspace != nullptr ? *workspace : local).scratch(0);
  const std::size_t sample = input.stride_n();
  const std::size_t in_plane = input.stride_c();
  const std::size_t out_plane =
      static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
  std::int16_t* qin = s.qin_buffer(sample);
  std::int32_t* iacc = s.iacc_buffer(
      static_cast<std::size_t>(spec.out_channels) * out_plane);
  const std::size_t k2 = static_cast<std::size_t>(spec.kernel) *
                         static_cast<std::size_t>(spec.kernel);

  for (int n = 0; n < is.n; ++n) {
    quantize_slice(input.raw() + static_cast<std::size_t>(n) * sample, sample,
                   input_scale, qin);
    float* out_n = out.raw() + static_cast<std::size_t>(n) * out.stride_n();
    // Each worker owns one output channel: the scatter never races.
    core::parallel_for(0, spec.out_channels, [&](int oc) {
      std::int32_t* acc = iacc + static_cast<std::size_t>(oc) * out_plane;
      std::fill(acc, acc + out_plane, 0);
      const std::int16_t* w_base =
          weights.wide.data() +
          static_cast<std::size_t>(oc) * weights.padded_patch;
      for (int ic = 0; ic < spec.in_channels; ++ic) {
        const std::int16_t* in_c =
            qin + static_cast<std::size_t>(ic) * in_plane;
        const std::int16_t* w_k =
            w_base + static_cast<std::size_t>(ic) * k2;
        for (int iy = 0; iy < is.h; ++iy) {
          const std::int16_t* in_row =
              in_c + static_cast<std::size_t>(iy) *
                         static_cast<std::size_t>(is.w);
          for (int ix = 0; ix < is.w; ++ix) {
            const std::int32_t qv = in_row[ix];
            if (qv == 0) continue;
            for (int ky = 0; ky < spec.kernel; ++ky) {
              const int oy = iy * spec.stride + ky - spec.padding;
              if (oy < 0 || oy >= out_h) continue;
              std::int32_t* acc_row =
                  acc + static_cast<std::size_t>(oy) *
                            static_cast<std::size_t>(out_w);
              const std::int16_t* w_row =
                  w_k + static_cast<std::size_t>(ky) *
                            static_cast<std::size_t>(spec.kernel);
              for (int kx = 0; kx < spec.kernel; ++kx) {
                const int ox = ix * spec.stride + kx - spec.padding;
                if (ox < 0 || ox >= out_w) continue;
                acc_row[ox] += qv * w_row[kx];
              }
            }
          }
        }
      }
      const float b = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc)];
      const float dqv =
          input_scale.scale * weights.scale[static_cast<std::size_t>(oc)];
      float* out_c = out_n + static_cast<std::size_t>(oc) * out_plane;
      for (std::size_t i = 0; i < out_plane; ++i) {
        out_c[i] = b + static_cast<float>(acc[i]) * dqv;
      }
    });
  }
}

DenseTensor int8_transposed_conv2d(const DenseTensor& input,
                                   const Int8ConvWeights& weights,
                                   std::span<const float> bias,
                                   Int8Scale input_scale,
                                   Workspace* workspace) {
  DenseTensor out;
  int8_transposed_conv2d_into(input, weights, bias, input_scale, out,
                              workspace);
  return out;
}

DenseTensor int8_fully_connected(const DenseTensor& input,
                                 const Int8ConvWeights& weights,
                                 std::span<const float> bias,
                                 Int8Scale input_scale, Workspace* workspace) {
  const TensorShape& is = input.shape();
  const auto features = static_cast<std::size_t>(is.c) *
                        static_cast<std::size_t>(is.h) *
                        static_cast<std::size_t>(is.w);
  if (features != weights.patch) {
    throw std::invalid_argument("int8_fully_connected: feature mismatch");
  }
  if (!bias.empty() &&
      static_cast<int>(bias.size()) != weights.spec.out_channels) {
    throw std::invalid_argument("int8_fully_connected: bias size mismatch");
  }
  DenseTensor out(TensorShape{is.n, weights.spec.out_channels, 1, 1});

  Workspace local;
  sparse::ConvScratch& s =
      (workspace != nullptr ? *workspace : local).scratch(0);
  std::int16_t* qin = s.qin_buffer(weights.padded_patch);
  std::fill(qin + features, qin + weights.padded_patch, std::int16_t{0});

  for (int n = 0; n < is.n; ++n) {
    quantize_slice(input.raw() + static_cast<std::size_t>(n) * features,
                   features, input_scale, qin);
    float* out_n = out.raw() + static_cast<std::size_t>(n) *
                                   static_cast<std::size_t>(
                                       weights.spec.out_channels);
    // One output value per channel: reuse the dot kernel with pixels = 1.
    dot_gemm(qin, weights.wide.data(), weights.padded_patch, 1,
             weights.spec.out_channels, bias, weights.scale.data(),
             input_scale.scale, out_n);
  }
  return out;
}

namespace {

constexpr int kOcBlock = 8;
constexpr int kMaxAccum = 256;  ///< stack accumulator limit (site axis)
constexpr std::size_t kSiteChunk = 2048;

/// One site range of the sparse int8 reduction: a single pass over each
/// site's quantized tap list accumulates every output channel in int32
/// against the packed [tap][oc] rows, then requantizes and emits COO
/// entries per channel.
EVEDGE_SIMD_CLONES
void reduce_sites_chunk(const sparse::ConvScratch& s,
                        const std::int16_t* packed, std::size_t oc_n,
                        std::size_t s0, std::size_t s1, const float* bias,
                        const float* wscale, float sx, int out_w,
                        std::vector<CooEntry>* per_oc) {
  // Dequantization factors on the stack, formed exactly as the dense
  // kernel forms them (sx * wscale[oc]) so shared sites agree bitwise.
  float dq[kMaxAccum];
  for (std::size_t j = 0; j < oc_n; ++j) dq[j] = sx * wscale[j];
  std::int32_t acc[kMaxAccum];
  for (std::size_t si = s0; si < s1; ++si) {
    std::fill(acc, acc + oc_n, 0);
    const std::size_t t0 = s.site_ptr[si];
    const std::size_t t1 = s.site_ptr[si + 1];
    for (std::size_t t = t0; t < t1; ++t) {
      const std::int16_t* w_row =
          packed + static_cast<std::size_t>(s.taps[t].w_offset) * oc_n;
      const std::int32_t qv = s.qtaps[t];
      std::size_t j = 0;
      for (; j + kOcBlock <= oc_n; j += kOcBlock) {
        for (int jj = 0; jj < kOcBlock; ++jj) {
          acc[j + jj] += w_row[j + jj] * qv;
        }
      }
      for (; j < oc_n; ++j) acc[j] += w_row[j] * qv;
    }
    const std::int32_t row = s.sites[si] / out_w;
    const std::int32_t col = s.sites[si] % out_w;
    for (std::size_t j = 0; j < oc_n; ++j) {
      const float b = bias == nullptr ? 0.0f : bias[j];
      const float v = b + static_cast<float>(acc[j]) * dq[j];
      if (v != 0.0f) per_oc[j].push_back(CooEntry{row, col, v});
    }
  }
}

/// Shared INT8 gather kernel: the sparse_ops front half + an int8 tap
/// reduction against the packed [tap][oc] rows.
std::vector<CooChannel> int8_gather_conv(std::span<const CooChannel> input,
                                         const Int8ConvWeights& weights,
                                         std::span<const float> bias,
                                         Int8Scale input_scale,
                                         bool submanifold, ConvWork* work,
                                         Workspace* workspace,
                                         const sparse::RowWindow* window =
                                             nullptr) {
  Workspace local;
  Workspace& arena = workspace != nullptr ? *workspace : local;
  sparse::ConvScratch& s = arena.scratch(0);
  // Windowing lives entirely in the shared front half: the tap stream is
  // restricted to the window sites, and the int8 reduction below is
  // per-site arithmetic over whatever stream it gets.
  const GatherGeometry geo = sparse::build_gather_taps(
      input, weights.fake, bias, weights.spec, submanifold, s, window);

  // Quantize the shared tap stream once; every channel block reuses it.
  s.qtaps.resize(s.taps.size());
  for (std::size_t t = 0; t < s.taps.size(); ++t) {
    s.qtaps[t] = static_cast<std::int16_t>(
        input_scale.quantize(s.taps[t].value));
  }

  const int oc_count = weights.spec.out_channels;
  const auto oc_n = static_cast<std::size_t>(oc_count);
  std::vector<std::vector<CooEntry>> out_entries(oc_n);
  const std::size_t n_sites = s.sites.size();

  if (oc_count <= kMaxAccum) {
    // Site-chunk axis: one pass over the tap stream accumulates EVERY
    // output channel against the packed (L1-resident) int16 rows —
    // chunks are fixed-size so the partitioning (and the concatenated
    // entry order) is independent of the worker count.
    const int site_chunks =
        static_cast<int>((n_sites + kSiteChunk - 1) / kSiteChunk);
    std::vector<std::vector<std::vector<CooEntry>>> chunk_entries(
        static_cast<std::size_t>(std::max(site_chunks, 1)));
    core::parallel_for(0, site_chunks, [&](int ck) {
      auto& per_oc = chunk_entries[static_cast<std::size_t>(ck)];
      per_oc.resize(oc_n);
      const std::size_t s0 = static_cast<std::size_t>(ck) * kSiteChunk;
      const std::size_t s1 = std::min(n_sites, s0 + kSiteChunk);
      for (auto& entries : per_oc) entries.reserve(s1 - s0);
      reduce_sites_chunk(s, weights.packed.data(), oc_n, s0, s1,
                         bias.empty() ? nullptr : bias.data(),
                         weights.scale.data(), input_scale.scale,
                         geo.out_w, per_oc.data());
    });
    for (std::size_t oc = 0; oc < oc_n; ++oc) {
      std::size_t total = 0;
      for (const auto& per_oc : chunk_entries) {
        if (!per_oc.empty()) total += per_oc[oc].size();
      }
      out_entries[oc].reserve(total);
      for (const auto& per_oc : chunk_entries) {
        if (per_oc.empty()) continue;
        out_entries[oc].insert(out_entries[oc].end(), per_oc[oc].begin(),
                               per_oc[oc].end());
      }
    }
  } else {
    // Wide-channel fallback: channel blocks of 8 re-walk the tap stream.
    const int oc_blocks = (oc_count + kOcBlock - 1) / kOcBlock;
    core::parallel_for(0, oc_blocks, [&](int blk) {
      const int oc0 = blk * kOcBlock;
      const int oc1 = std::min(oc_count, oc0 + kOcBlock);
      const int lanes = oc1 - oc0;
      for (int j = 0; j < lanes; ++j) {
        out_entries[static_cast<std::size_t>(oc0 + j)].reserve(n_sites);
      }
      const std::int16_t* w_block =
          weights.packed.data() + static_cast<std::size_t>(oc0);
      for (std::size_t si = 0; si < n_sites; ++si) {
        std::int32_t acc[kOcBlock] = {};
        const std::size_t t0 = s.site_ptr[si];
        const std::size_t t1 = s.site_ptr[si + 1];
        if (lanes == kOcBlock) {
          for (std::size_t t = t0; t < t1; ++t) {
            const std::int16_t* w_row =
                w_block +
                static_cast<std::size_t>(s.taps[t].w_offset) * oc_n;
            const std::int32_t qv = s.qtaps[t];
            for (int j = 0; j < kOcBlock; ++j) acc[j] += w_row[j] * qv;
          }
        } else {
          for (std::size_t t = t0; t < t1; ++t) {
            const std::int16_t* w_row =
                w_block +
                static_cast<std::size_t>(s.taps[t].w_offset) * oc_n;
            const std::int32_t qv = s.qtaps[t];
            for (int j = 0; j < lanes; ++j) acc[j] += w_row[j] * qv;
          }
        }
        const std::int32_t row = s.sites[si] / geo.out_w;
        const std::int32_t col = s.sites[si] % geo.out_w;
        for (int j = 0; j < lanes; ++j) {
          const auto oc = static_cast<std::size_t>(oc0 + j);
          const float b = bias.empty() ? 0.0f : bias[oc];
          const float v = b + static_cast<float>(acc[j]) *
                                  (input_scale.scale * weights.scale[oc]);
          if (v != 0.0f) out_entries[oc].push_back(CooEntry{row, col, v});
        }
      }
    });
  }

  sparse::clear_gather_scratch(input, s);

  std::vector<CooChannel> out;
  out.reserve(oc_n);
  for (auto& entries : out_entries) {
    out.push_back(CooChannel::from_sorted_entries(geo.out_h, geo.out_w,
                                                  std::move(entries)));
  }
  if (work != nullptr) {
    int mac_rows = geo.out_h;
    if (window != nullptr) {
      const int w0 = std::clamp(window->out_row0, 0, geo.out_h);
      mac_rows = std::clamp(window->out_row1, w0, geo.out_h) - w0;
    }
    work->dense_macs += static_cast<std::size_t>(mac_rows) *
                        static_cast<std::size_t>(geo.out_w) * oc_n *
                        weights.patch;
    work->sparse_macs += s.taps.size() * oc_n;
    work->nnz_in += geo.nnz_in;
  }
  return out;
}

}  // namespace

std::vector<CooChannel> int8_submanifold_conv2d(
    std::span<const CooChannel> input, const Int8ConvWeights& weights,
    std::span<const float> bias, Int8Scale input_scale, ConvWork* work,
    Workspace* workspace, const sparse::RowWindow* window) {
  return int8_gather_conv(input, weights, bias, input_scale,
                          /*submanifold=*/true, work, workspace, window);
}

std::vector<CooChannel> int8_sparse_conv2d_csr(
    std::span<const CooChannel> input, const Int8ConvWeights& weights,
    std::span<const float> bias, Int8Scale input_scale, ConvWork* work,
    Workspace* workspace, const sparse::RowWindow* window) {
  return int8_gather_conv(input, weights, bias, input_scale,
                          /*submanifold=*/false, work, workspace, window);
}

}  // namespace evedge::quant
