#include "quant/quantizer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace evedge::quant {

float round_to_fp16(float v) noexcept {
  if (!std::isfinite(v)) return v;
  constexpr float kHalfMax = 65504.0f;
  if (v > kHalfMax) return kHalfMax;
  if (v < -kHalfMax) return -kHalfMax;

  const auto bits = std::bit_cast<std::uint32_t>(v);
  const std::uint32_t exponent = (bits >> 23) & 0xFFu;
  // Below half's smallest subnormal (2^-24): flush to zero.
  if (exponent < 127 - 24) return std::copysign(0.0f, v);

  // Round mantissa to 10 bits (half precision) with round-to-nearest-even.
  // For half-subnormal range (exponent < -14) widen the rounding step so
  // the grid matches half subnormals.
  int shift = 13;  // 23 - 10 mantissa bits
  if (exponent < 127 - 14) {
    shift += static_cast<int>((127u - 14u) - exponent);
    shift = std::min(shift, 23);
  }
  const std::uint32_t mask = (1u << shift) - 1u;
  const std::uint32_t remainder = bits & mask;
  const std::uint32_t halfway = 1u << (shift - 1);
  std::uint32_t truncated = bits & ~mask;
  if (remainder > halfway ||
      (remainder == halfway && ((bits >> shift) & 1u) != 0u)) {
    truncated += (1u << shift);
  }
  return std::bit_cast<float>(truncated);
}

Int8Scale Int8Scale::for_range(float max_abs) noexcept {
  if (!std::isfinite(max_abs) || max_abs <= 0.0f) return Int8Scale{1.0f};
  return Int8Scale{max_abs / 127.0f};
}

float Int8Scale::apply(float v) const noexcept {
  return static_cast<float>(quantize(v)) * scale;
}

float max_abs(std::span<const float> values) noexcept {
  float m = 0.0f;
  for (float v : values) {
    const float a = std::abs(v);
    if (std::isfinite(a)) m = std::max(m, a);
  }
  return m;
}

void fake_quantize(std::span<float> values, Precision precision) noexcept {
  switch (precision) {
    case Precision::kFp32:
      return;
    case Precision::kFp16:
      for (float& v : values) v = round_to_fp16(v);
      return;
    case Precision::kInt8: {
      const Int8Scale scale = Int8Scale::for_range(max_abs(values));
      for (float& v : values) v = scale.apply(v);
      return;
    }
  }
}

void fake_quantize(sparse::DenseTensor& tensor,
                   Precision precision) noexcept {
  fake_quantize(tensor.data(), precision);
}

double quantization_step(float max_abs_value, Precision precision) noexcept {
  switch (precision) {
    case Precision::kFp32:
      return 0.0;
    case Precision::kFp16:
      // Relative epsilon of half (2^-11 with rounding) times the range.
      return static_cast<double>(max_abs_value) * 4.8828125e-4;
    case Precision::kInt8:
      return static_cast<double>(max_abs_value) / 127.0 * 0.5;
  }
  return 0.0;
}

}  // namespace evedge::quant
