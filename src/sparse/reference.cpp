#include "sparse/reference.hpp"

#include <set>
#include <stdexcept>
#include <utility>

namespace evedge::sparse::reference {

namespace {

void validate_sparse_conv_inputs(std::span<const CooChannel> input,
                                 const DenseTensor& weights,
                                 std::span<const float> bias,
                                 const Conv2dSpec& spec) {
  validate_conv_spec(spec);
  if (static_cast<int>(input.size()) != spec.in_channels) {
    throw std::invalid_argument("reference sparse conv: channel mismatch");
  }
  const TensorShape& ws = weights.shape();
  if (ws.n != spec.out_channels || ws.c != spec.in_channels ||
      ws.h != spec.kernel || ws.w != spec.kernel) {
    throw std::invalid_argument("reference sparse conv: weight mismatch");
  }
  if (!bias.empty() && static_cast<int>(bias.size()) != spec.out_channels) {
    throw std::invalid_argument("reference sparse conv: bias mismatch");
  }
  for (std::size_t c = 1; c < input.size(); ++c) {
    if (input[c].height() != input[0].height() ||
        input[c].width() != input[0].width()) {
      throw std::invalid_argument("reference sparse conv: extents differ");
    }
  }
}

[[nodiscard]] std::size_t dense_mac_count(const Conv2dSpec& spec, int out_h,
                                          int out_w) {
  return static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w) *
         static_cast<std::size_t>(spec.out_channels) *
         static_cast<std::size_t>(spec.in_channels) *
         static_cast<std::size_t>(spec.kernel) *
         static_cast<std::size_t>(spec.kernel);
}

}  // namespace

DenseTensor conv2d(const DenseTensor& input, const DenseTensor& weights,
                   std::span<const float> bias, const Conv2dSpec& spec) {
  validate_conv_spec(spec);
  const TensorShape& is = input.shape();
  const TensorShape& ws = weights.shape();
  if (is.c != spec.in_channels) {
    throw std::invalid_argument("reference conv2d: input channel mismatch");
  }
  if (ws.n != spec.out_channels || ws.c != spec.in_channels ||
      ws.h != spec.kernel || ws.w != spec.kernel) {
    throw std::invalid_argument("reference conv2d: weight shape mismatch");
  }
  if (!bias.empty() && static_cast<int>(bias.size()) != spec.out_channels) {
    throw std::invalid_argument("reference conv2d: bias size mismatch");
  }
  const int out_h =
      conv_out_extent(is.h, spec.kernel, spec.stride, spec.padding);
  const int out_w =
      conv_out_extent(is.w, spec.kernel, spec.stride, spec.padding);
  DenseTensor out(TensorShape{is.n, spec.out_channels, out_h, out_w});
  for (int n = 0; n < is.n; ++n) {
    for (int oc = 0; oc < spec.out_channels; ++oc) {
      const float b = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc)];
      for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
          float acc = b;
          for (int ic = 0; ic < spec.in_channels; ++ic) {
            for (int ky = 0; ky < spec.kernel; ++ky) {
              const int iy = oy * spec.stride + ky - spec.padding;
              if (iy < 0 || iy >= is.h) continue;
              for (int kx = 0; kx < spec.kernel; ++kx) {
                const int ix = ox * spec.stride + kx - spec.padding;
                if (ix < 0 || ix >= is.w) continue;
                acc += input.at(n, ic, iy, ix) * weights.at(oc, ic, ky, kx);
              }
            }
          }
          out.at(n, oc, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

DenseTensor sparse_conv2d(std::span<const CooChannel> input,
                          const DenseTensor& weights,
                          std::span<const float> bias, const Conv2dSpec& spec,
                          ConvWork* work) {
  validate_sparse_conv_inputs(input, weights, bias, spec);
  const int in_h = input[0].height();
  const int in_w = input[0].width();
  const int out_h =
      conv_out_extent(in_h, spec.kernel, spec.stride, spec.padding);
  const int out_w =
      conv_out_extent(in_w, spec.kernel, spec.stride, spec.padding);

  DenseTensor out(TensorShape{1, spec.out_channels, out_h, out_w});
  if (!bias.empty()) {
    for (int oc = 0; oc < spec.out_channels; ++oc) {
      for (int y = 0; y < out_h; ++y) {
        for (int x = 0; x < out_w; ++x) {
          out.at(0, oc, y, x) = bias[static_cast<std::size_t>(oc)];
        }
      }
    }
  }

  std::size_t sparse_macs = 0;
  std::size_t nnz_in = 0;
  for (int ic = 0; ic < spec.in_channels; ++ic) {
    const CooChannel& ch = input[static_cast<std::size_t>(ic)];
    nnz_in += ch.nnz();
    for (const CooEntry& e : ch.entries()) {
      for (int ky = 0; ky < spec.kernel; ++ky) {
        const int oy_num = e.row + spec.padding - ky;
        if (oy_num < 0 || oy_num % spec.stride != 0) continue;
        const int oy = oy_num / spec.stride;
        if (oy >= out_h) continue;
        for (int kx = 0; kx < spec.kernel; ++kx) {
          const int ox_num = e.col + spec.padding - kx;
          if (ox_num < 0 || ox_num % spec.stride != 0) continue;
          const int ox = ox_num / spec.stride;
          if (ox >= out_w) continue;
          for (int oc = 0; oc < spec.out_channels; ++oc) {
            out.at(0, oc, oy, ox) += weights.at(oc, ic, ky, kx) * e.value;
          }
          sparse_macs += static_cast<std::size_t>(spec.out_channels);
        }
      }
    }
  }

  if (work != nullptr) {
    work->dense_macs += dense_mac_count(spec, out_h, out_w);
    work->sparse_macs += sparse_macs;
    work->nnz_in += nnz_in;
  }
  return out;
}

std::vector<CooChannel> submanifold_conv2d(std::span<const CooChannel> input,
                                           const DenseTensor& weights,
                                           std::span<const float> bias,
                                           const Conv2dSpec& spec,
                                           ConvWork* work) {
  validate_sparse_conv_inputs(input, weights, bias, spec);
  if (spec.stride != 1) {
    throw std::invalid_argument("submanifold conv requires stride 1");
  }
  if (conv_out_extent(input[0].height(), spec.kernel, 1, spec.padding) !=
          input[0].height() ||
      conv_out_extent(input[0].width(), spec.kernel, 1, spec.padding) !=
          input[0].width()) {
    throw std::invalid_argument(
        "submanifold conv requires same-extent output (kernel = 2*padding+1)");
  }
  const int h = input[0].height();
  const int w = input[0].width();

  std::set<std::pair<std::int32_t, std::int32_t>> active;
  for (const CooChannel& ch : input) {
    for (const CooEntry& e : ch.entries()) active.insert({e.row, e.col});
  }

  std::size_t sparse_macs = 0;
  std::size_t nnz_in = 0;
  for (const CooChannel& ch : input) nnz_in += ch.nnz();

  std::vector<std::vector<CooEntry>> out_entries(
      static_cast<std::size_t>(spec.out_channels));
  for (const auto& [row, col] : active) {
    for (int oc = 0; oc < spec.out_channels; ++oc) {
      float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc)];
      for (int ic = 0; ic < spec.in_channels; ++ic) {
        const CooChannel& ch = input[static_cast<std::size_t>(ic)];
        for (int ky = 0; ky < spec.kernel; ++ky) {
          const int iy = row - spec.padding + ky;
          if (iy < 0 || iy >= h) continue;
          for (int kx = 0; kx < spec.kernel; ++kx) {
            const int ix = col - spec.padding + kx;
            if (ix < 0 || ix >= w) continue;
            const float v = ch.at(iy, ix);
            if (v != 0.0f) {
              acc += weights.at(oc, ic, ky, kx) * v;
              ++sparse_macs;
            }
          }
        }
      }
      if (acc != 0.0f) {
        out_entries[static_cast<std::size_t>(oc)].push_back(
            CooEntry{row, col, acc});
      }
    }
  }

  std::vector<CooChannel> out;
  out.reserve(static_cast<std::size_t>(spec.out_channels));
  for (auto& entries : out_entries) {
    out.push_back(CooChannel::from_entries(h, w, std::move(entries)));
  }
  if (work != nullptr) {
    work->dense_macs += dense_mac_count(spec, h, w);
    work->sparse_macs += sparse_macs;
    work->nnz_in += nnz_in;
  }
  return out;
}

}  // namespace evedge::sparse::reference
