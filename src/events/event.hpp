#pragma once

// Core event-camera data types: the Address Event Representation (AER)
// event record and the sensor geometry it lives on.
//
// Event cameras emit an asynchronous stream of brightness-change events.
// Each event is the tuple {x, y, t, p}: pixel location, timestamp and the
// polarity (sign) of the log-intensity change (paper, Background section 2).

#include <cstdint>
#include <stdexcept>
#include <string>

namespace evedge::events {

/// Timestamp in microseconds. MVSEC and most DAVIS tooling use integer
/// microseconds; we follow that convention everywhere.
using TimeUs = std::int64_t;

/// Polarity of the brightness change that triggered an event.
enum class Polarity : std::uint8_t {
  kNegative = 0,  ///< log-intensity decreased by at least the threshold
  kPositive = 1,  ///< log-intensity increased by at least the threshold
};

/// Sign of a polarity as an integer: +1 for positive, -1 for negative.
[[nodiscard]] constexpr int polarity_sign(Polarity p) noexcept {
  return p == Polarity::kPositive ? +1 : -1;
}

/// One AER event record {x, y, t, p}.
struct Event {
  std::uint16_t x = 0;  ///< column, in [0, width)
  std::uint16_t y = 0;  ///< row, in [0, height)
  TimeUs t = 0;         ///< timestamp, microseconds
  Polarity p = Polarity::kPositive;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Sensor pixel-array geometry. Default is the DAVIS346 used to record
/// MVSEC (346 x 260).
struct SensorGeometry {
  int width = 346;
  int height = 260;

  [[nodiscard]] constexpr std::int64_t pixel_count() const noexcept {
    return static_cast<std::int64_t>(width) * height;
  }

  [[nodiscard]] constexpr bool contains(int x, int y) const noexcept {
    return x >= 0 && x < width && y >= 0 && y < height;
  }

  friend bool operator==(const SensorGeometry&,
                         const SensorGeometry&) = default;
};

/// Geometry preset for the DAVIS346 (MVSEC recordings).
[[nodiscard]] constexpr SensorGeometry davis346() noexcept {
  return SensorGeometry{346, 260};
}

/// Throws std::invalid_argument unless the geometry has positive extents.
inline void validate_geometry(const SensorGeometry& g) {
  if (g.width <= 0 || g.height <= 0) {
    throw std::invalid_argument("SensorGeometry extents must be positive: " +
                                std::to_string(g.width) + "x" +
                                std::to_string(g.height));
  }
}

}  // namespace evedge::events
