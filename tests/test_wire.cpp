// Wire-protocol test suite: EVWP packet encode/decode round trips, the
// CRC-32 known-answer vector, framer resynchronization on hostile byte
// streams, 32-bit timestamp-wrap edge cases (mid-packet, across a
// reconnect resume, E2SF windows straddling a wrap), zero-length
// packets, both transports (TCP loopback, shared-memory ring), the
// go-back-N session layer under every NetFaultProxy fault type, the
// seeded network-fault plan's reproducibility, the recorder/replayer
// harness, the crash-consistent fault journal, and the run_wire
// serving path's bitwise parity with run_serial.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/e2sf.hpp"
#include "events/density_profile.hpp"
#include "events/event_stream.hpp"
#include "events/event_synth.hpp"
#include "nn/zoo.hpp"
#include "serve/journal.hpp"
#include "serve/serving_runtime.hpp"
#include "wire/crc32.hpp"
#include "wire/net_fault_proxy.hpp"
#include "wire/packet.hpp"
#include "wire/recorder.hpp"
#include "wire/session.hpp"
#include "wire/transport.hpp"

namespace ec = evedge::core;
namespace ee = evedge::events;
namespace en = evedge::nn;
namespace es = evedge::sparse;
namespace ev = evedge::serve;
namespace ew = evedge::wire;

using namespace std::chrono_literals;

namespace {

/// Deterministic synthetic stream at a small geometry.
ee::EventStream small_stream(ee::TimeUs t0, ee::TimeUs duration,
                             std::uint64_t seed, int w = 64, int h = 48) {
  ee::SynthConfig cfg;
  cfg.geometry = ee::SensorGeometry{w, h};
  cfg.seed = seed;
  cfg.blob_count = 3;
  ee::DensityProfile profile("wire-test", 30.0, {}, 8.0, 0.4);
  return ee::PoissonEventSynthesizer(profile, cfg).generate(t0,
                                                            t0 + duration);
}

/// Hand-built stream: evenly spaced alternating-polarity events walking
/// the diagonal, starting at `t0` with `gap_us` spacing.
ee::EventStream ramp_stream(ee::TimeUs t0, std::size_t n,
                            ee::TimeUs gap_us, int w = 64, int h = 48) {
  std::vector<ee::Event> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ee::Event e;
    e.x = static_cast<std::uint16_t>(i % static_cast<std::size_t>(w));
    e.y = static_cast<std::uint16_t>(i % static_cast<std::size_t>(h));
    e.t = t0 + static_cast<ee::TimeUs>(i) * gap_us;
    e.p = (i % 2 == 0) ? ee::Polarity::kPositive : ee::Polarity::kNegative;
    events.push_back(e);
  }
  return ee::EventStream(ee::SensorGeometry{w, h}, std::move(events));
}

/// Collects everything a receiver accepts.
struct CollectingSink {
  ew::StreamHeader header{};
  bool saw_hello = false;
  bool saw_eos = false;
  std::int64_t eos_t = 0;
  std::vector<ee::Event> events;
  std::vector<ew::PacketError> rejections;

  ew::WireSink sink() {
    ew::WireSink s;
    s.hello = [this](const ew::StreamHeader& h) {
      header = h;
      saw_hello = true;
    };
    s.events = [this](std::span<const ee::Event> batch, std::uint32_t) {
      events.insert(events.end(), batch.begin(), batch.end());
    };
    s.eos = [this](std::int64_t t) {
      saw_eos = true;
      eos_t = t;
    };
    s.rejected = [this](ew::PacketError e) { rejections.push_back(e); };
    return s;
  }
};

/// Runs a sender (on its own thread, connecting through `factory`) into
/// a receiver accepting from `listener`, until the session completes or
/// the receiver gives up. Returns sender stats.
ew::WireSendStats pump_session(const ee::EventStream& stream,
                               ew::WireSenderConfig sender_cfg,
                               ew::TransportFactory factory,
                               ew::TcpListener& listener,
                               ew::WireReceiver& receiver,
                               int max_accepts = 20) {
  ew::WireSender sender(stream, std::move(sender_cfg), std::move(factory));
  ew::WireSendStats stats;
  std::thread tx([&] { stats = sender.run(); });
  for (int i = 0; i < max_accepts && !receiver.eos(); ++i) {
    std::unique_ptr<ew::Transport> t = listener.accept(2000ms);
    if (!t) continue;
    const ew::ServeOutcome outcome = receiver.serve(*t);
    t->close();
    if (outcome == ew::ServeOutcome::kEndOfStream) break;
  }
  tx.join();
  receiver.finish();
  return stats;
}

std::string temp_path(const char* tag) {
  return std::string(::testing::TempDir()) + "evedge_wire_" + tag + "_" +
         std::to_string(::getpid());
}

}  // namespace

// ------------------------------------------------------------- CRC-32

TEST(WireCrc, KnownAnswerVector) {
  // The canonical CRC-32 (reflected, poly 0xEDB88320) check value.
  const char* s = "123456789";
  EXPECT_EQ(ew::crc32(s, 9), 0xCBF43926u);
}

TEST(WireCrc, ChainingMatchesOneShot) {
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::uint32_t whole = ew::crc32(bytes.data(), bytes.size());
  const std::uint32_t head = ew::crc32(bytes.data(), 4);
  EXPECT_EQ(ew::crc32(bytes.data() + 4, bytes.size() - 4, head), whole);
  EXPECT_NE(whole, ew::crc32(bytes.data(), bytes.size() - 1));
}

// ------------------------------------------------- encode/decode/frame

TEST(WirePacket, HelloDataEosRoundTrip) {
  const ee::EventStream stream = ramp_stream(1'000'000, 100, 50);
  ew::StreamHeader header;
  header.width = 64;
  header.height = 48;
  header.epoch_us = stream.t_begin();
  header.t_end_us = stream.t_end();
  header.data_packets = 1;

  std::vector<std::uint8_t> bytes;
  ew::encode_hello(7, header, bytes);
  ew::encode_data(7, 0, stream.events(), bytes);
  ew::encode_eos(7, 1, stream.t_end(), bytes);

  ew::PacketFramer framer;
  framer.feed(bytes.data(), bytes.size());

  auto hello = framer.next();
  ASSERT_TRUE(hello.has_value());
  ASSERT_EQ(hello->error, ew::PacketError::kNone);
  EXPECT_EQ(hello->header.type, ew::PacketType::kHello);
  EXPECT_EQ(hello->header.session_id, 7u);
  ew::StreamHeader decoded_header;
  ASSERT_TRUE(ew::decode_hello(hello->payload, decoded_header));
  EXPECT_EQ(decoded_header, header);

  auto data = framer.next();
  ASSERT_TRUE(data.has_value());
  ASSERT_EQ(data->error, ew::PacketError::kNone);
  EXPECT_EQ(data->header.type, ew::PacketType::kData);
  EXPECT_EQ(data->header.event_count, 100u);
  ew::TimestampUnwrapper unwrapper(header.epoch_us);
  std::vector<ee::Event> events;
  ASSERT_EQ(ew::decode_events(data->payload, data->header.event_count,
                              unwrapper.unwrap(data->header.t_base),
                              header.epoch_us, header.width, header.height,
                              events),
            ew::PacketError::kNone);
  ASSERT_EQ(events.size(), stream.events().size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i], stream.events()[i]) << "event " << i;
  }

  auto eos = framer.next();
  ASSERT_TRUE(eos.has_value());
  ASSERT_EQ(eos->error, ew::PacketError::kNone);
  EXPECT_EQ(eos->header.type, ew::PacketType::kEndOfStream);
  EXPECT_EQ(eos->header.seq, 1u);
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(WirePacket, EncodeDataRejectsUnencodable) {
  std::vector<std::uint8_t> out;
  std::vector<ee::Event> too_many(ew::kMaxEventsPerPacket + 1);
  EXPECT_THROW(ew::encode_data(1, 0, too_many, out), std::invalid_argument);

  std::vector<ee::Event> bad_y(1);
  bad_y[0].y = 0x8000;  // collides with the polarity bit
  EXPECT_THROW(ew::encode_data(1, 0, bad_y, out), std::invalid_argument);

  std::vector<ee::Event> non_monotone(2);
  non_monotone[0].t = 100;
  non_monotone[1].t = 99;
  EXPECT_THROW(ew::encode_data(1, 0, non_monotone, out),
               std::invalid_argument);
}

TEST(WirePacket, ZeroLengthDataPacketIsLegal) {
  std::vector<std::uint8_t> bytes;
  ew::encode_data(3, 5, {}, bytes);
  EXPECT_EQ(bytes.size(), ew::kHeaderBytes);
  ew::PacketFramer framer;
  framer.feed(bytes.data(), bytes.size());
  auto framed = framer.next();
  ASSERT_TRUE(framed.has_value());
  EXPECT_EQ(framed->error, ew::PacketError::kNone);
  EXPECT_EQ(framed->header.event_count, 0u);
  EXPECT_EQ(framed->header.seq, 5u);
  EXPECT_TRUE(framed->payload.empty());
}

TEST(WireFramer, ResyncsPastGarbageWithOneRejectionPerRun) {
  std::vector<std::uint8_t> packet;
  ew::encode_heartbeat(1, ew::kNoneAcked, 0, packet);

  // garbage ++ packet ++ garbage ++ packet
  std::vector<std::uint8_t> bytes(37, 0x5A);
  bytes.insert(bytes.end(), packet.begin(), packet.end());
  for (int i = 0; i < 64; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(i * 7 + 1));
  }
  bytes.insert(bytes.end(), packet.begin(), packet.end());

  ew::PacketFramer framer;
  framer.feed(bytes.data(), bytes.size());
  std::size_t ok = 0;
  std::size_t bad_magic = 0;
  while (auto framed = framer.next()) {
    if (framed->error == ew::PacketError::kNone) {
      ++ok;
      EXPECT_EQ(framed->header.type, ew::PacketType::kHeartbeat);
    } else {
      EXPECT_EQ(framed->error, ew::PacketError::kBadMagic);
      ++bad_magic;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(bad_magic, 2u);  // one rejection per contiguous garbage run
}

TEST(WireFramer, CrcFlipRejectsAndRecovers) {
  std::vector<std::uint8_t> bytes;
  ew::encode_data(1, 0, ramp_stream(0, 8, 10).events(), bytes);
  const std::size_t first_len = bytes.size();
  ew::encode_data(1, 1, ramp_stream(1000, 8, 10).events(), bytes);
  bytes[ew::kHeaderBytes + 3] ^= 0xFF;  // corrupt the first payload

  ew::PacketFramer framer;
  framer.feed(bytes.data(), bytes.size());
  std::size_t crc_fail = 0;
  std::size_t ok = 0;
  while (auto framed = framer.next()) {
    if (framed->error == ew::PacketError::kBadCrc) {
      ++crc_fail;
    } else if (framed->error == ew::PacketError::kNone) {
      ++ok;
      EXPECT_EQ(framed->header.seq, 1u);
    }
  }
  EXPECT_EQ(crc_fail, 1u);
  EXPECT_EQ(ok, 1u);
  (void)first_len;
}

TEST(WireFramer, TruncatedTailWaitsForMoreBytes) {
  std::vector<std::uint8_t> bytes;
  ew::encode_data(1, 0, ramp_stream(0, 16, 10).events(), bytes);
  ew::PacketFramer framer;
  // Feed all but the last 5 bytes: no packet yet, no rejection.
  framer.feed(bytes.data(), bytes.size() - 5);
  EXPECT_FALSE(framer.next().has_value());
  framer.feed(bytes.data() + bytes.size() - 5, 5);
  auto framed = framer.next();
  ASSERT_TRUE(framed.has_value());
  EXPECT_EQ(framed->error, ew::PacketError::kNone);
}

// -------------------------------------------------- timestamp wrapping

TEST(WireTimestamp, UnwrapperCrossesWrapBoundary) {
  const std::int64_t wrap = std::int64_t{1} << 32;
  ew::TimestampUnwrapper u(wrap - 100);
  EXPECT_EQ(u.unwrap(static_cast<std::uint32_t>(wrap - 50)), wrap - 50);
  // Low 32 bits wrapped to a small value: unwrap lands past the boundary.
  EXPECT_EQ(u.unwrap(static_cast<std::uint32_t>(wrap + 30)), wrap + 30);
  EXPECT_EQ(u.unwrap(7), wrap + 30 + (7 - 30 + (std::int64_t{1} << 32)) %
                             (std::int64_t{1} << 32));
}

TEST(WireTimestamp, WrapMidPacketDecodesExactly) {
  // Events straddle the 2^32 us boundary INSIDE one packet: t_base is
  // pre-wrap, dt offsets carry the events across.
  const std::int64_t wrap = std::int64_t{1} << 32;
  const ee::EventStream stream = ramp_stream(wrap - 200, 40, 10);
  ASSERT_LT(stream.t_begin(), wrap);
  ASSERT_GT(stream.t_end(), wrap);

  std::vector<std::uint8_t> bytes;
  ew::encode_data(1, 0, stream.events(), bytes);
  ew::PacketFramer framer;
  framer.feed(bytes.data(), bytes.size());
  auto framed = framer.next();
  ASSERT_TRUE(framed.has_value());
  ASSERT_EQ(framed->error, ew::PacketError::kNone);

  ew::TimestampUnwrapper unwrapper(stream.t_begin());
  std::vector<ee::Event> events;
  ASSERT_EQ(ew::decode_events(framed->payload, framed->header.event_count,
                              unwrapper.unwrap(framed->header.t_base),
                              stream.t_begin(), 64, 48, events),
            ew::PacketError::kNone);
  ASSERT_EQ(events.size(), stream.events().size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].t, stream.events()[i].t) << "event " << i;
  }
}

TEST(WireTimestamp, WrapAcrossPacketsThroughSession) {
  // Consecutive packets on opposite sides of the wrap: the receiver's
  // unwrapper must carry the 64-bit timeline across the seam. Exercised
  // through the full session layer over a shm ring.
  const std::int64_t wrap = std::int64_t{1} << 32;
  const ee::EventStream stream = ramp_stream(wrap - 5000, 300, 40);
  ASSERT_GT(stream.t_end(), wrap);

  auto [tx_end, rx_end] = ew::ShmRingTransport::make_pair();
  CollectingSink collect;
  ew::WireReceiver receiver(ew::WireReceiverConfig{}, collect.sink());

  std::shared_ptr<ew::Transport> sender_side = std::move(tx_end);
  ew::WireSenderConfig cfg;
  cfg.events_per_packet = 32;  // force many packets across the seam
  ew::WireSender sender(stream, cfg, [sender_side] {
    struct Borrow : ew::Transport {
      std::shared_ptr<ew::Transport> inner;
      explicit Borrow(std::shared_ptr<ew::Transport> t)
          : inner(std::move(t)) {}
      bool send(const void* d, std::size_t n) override {
        return inner->send(d, n);
      }
      std::ptrdiff_t recv_some(void* d, std::size_t n,
                               std::chrono::milliseconds t) override {
        return inner->recv_some(d, n, t);
      }
      void close() override {}
      bool closed() const override { return inner->closed(); }
    };
    return std::make_unique<Borrow>(sender_side);
  });

  ew::WireSendStats stats;
  std::thread tx([&] { stats = sender.run(); });
  while (!receiver.eos()) {
    const ew::ServeOutcome outcome = receiver.serve(*rx_end);
    if (outcome != ew::ServeOutcome::kEndOfStream) break;
  }
  tx.join();

  EXPECT_TRUE(stats.completed);
  ASSERT_TRUE(collect.saw_eos);
  ASSERT_EQ(collect.events.size(), stream.events().size());
  for (std::size_t i = 0; i < collect.events.size(); ++i) {
    ASSERT_EQ(collect.events[i], stream.events()[i]) << "event " << i;
  }
  EXPECT_TRUE(receiver.stats().accounting_ok());
}

TEST(WireTimestamp, E2sfWindowStraddlingWrapMatchesInProcess) {
  // The acid test for satellite 4: an E2SF framing window that straddles
  // the 32-bit wrap must produce identical sparse frames whether the
  // events arrived in-process or were decoded off the wire.
  const std::int64_t wrap = std::int64_t{1} << 32;
  const ee::EventStream stream = ramp_stream(wrap - 20'000, 800, 50);
  ASSERT_GT(stream.t_end(), wrap);

  // Wire round trip through the recorder (encode -> frame -> decode).
  const std::string path = temp_path("wrap");
  ew::record_stream(stream, path, 64);
  ew::StreamReplayer replayer(path);
  const ee::EventStream decoded = replayer.decode();
  std::remove(path.c_str());

  ASSERT_EQ(decoded.events().size(), stream.events().size());
  for (std::size_t i = 0; i < decoded.events().size(); ++i) {
    ASSERT_EQ(decoded.events()[i], stream.events()[i]) << "event " << i;
  }

  // Same E2SF conversion on both sides of a window containing the wrap.
  const ec::E2sfConfig cfg;
  const ec::Event2SparseFrame e2sf(stream.geometry(), cfg);
  const ee::TimeUs t0 = wrap - 10'000;
  const ee::TimeUs t1 = wrap + 10'000;
  const auto direct = e2sf.convert(stream.slice(t0, t1), t0, t1);
  const auto wired = e2sf.convert(decoded.slice(t0, t1), t0, t1);
  ASSERT_EQ(direct.size(), wired.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(es::max_abs_diff(direct[i].to_dense(), wired[i].to_dense()),
              0.0f)
        << "bin " << i;
  }
}

// ----------------------------------------------------------- transports

TEST(WireTransport, TcpLoopbackRoundTrip) {
  ew::TcpListener listener;
  ASSERT_NE(listener.port(), 0);
  std::unique_ptr<ew::Transport> client;
  std::thread dial([&] {
    client = ew::TcpTransport::connect(listener.port(), 2000ms);
  });
  std::unique_ptr<ew::Transport> server = listener.accept(2000ms);
  dial.join();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  const std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
  ASSERT_TRUE(client->send(msg.data(), msg.size()));
  std::vector<std::uint8_t> got(msg.size());
  std::size_t read = 0;
  while (read < got.size()) {
    const std::ptrdiff_t n =
        server->recv_some(got.data() + read, got.size() - read, 1000ms);
    ASSERT_GT(n, 0);
    read += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(got, msg);

  // Orderly shutdown surfaces as EOF, not an error or a hang.
  client->close();
  std::uint8_t buf;
  EXPECT_EQ(server->recv_some(&buf, 1, 1000ms), -1);
}

TEST(WireTransport, ShmRingDrainsBufferedBytesBeforeEof) {
  auto [a, b] = ew::ShmRingTransport::make_pair(1 << 12);
  const std::vector<std::uint8_t> msg{9, 8, 7};
  ASSERT_TRUE(a->send(msg.data(), msg.size()));
  a->close();  // bytes written BEFORE close must still be readable
  std::vector<std::uint8_t> got(msg.size());
  EXPECT_EQ(b->recv_some(got.data(), got.size(), 100ms),
            static_cast<std::ptrdiff_t>(msg.size()));
  EXPECT_EQ(got, msg);
  std::uint8_t buf;
  EXPECT_EQ(b->recv_some(&buf, 1, 10ms), -1);
}

TEST(WireTransport, RecvTimeoutReturnsZeroWhileLinkUp) {
  auto [a, b] = ew::ShmRingTransport::make_pair();
  std::uint8_t buf;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(b->recv_some(&buf, 1, 30ms), 0);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, 25ms);
  (void)a;
}

// ------------------------------------------------------ session + ARQ

TEST(WireSession, FaultFreeTcpSessionDeliversEverythingOnce) {
  // 1000 events at 64/packet -> 16 data packets.
  const ee::EventStream stream = ramp_stream(0, 1000, 100);
  ew::TcpListener listener;
  CollectingSink collect;
  ew::WireReceiver receiver(ew::WireReceiverConfig{}, collect.sink());

  ew::WireSenderConfig cfg;
  cfg.events_per_packet = 64;
  const std::uint16_t port = listener.port();
  const ew::WireSendStats stats = pump_session(
      stream, cfg, [port] { return ew::TcpTransport::connect(port, 2000ms); },
      listener, receiver);

  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.reconnects, 0u);
  ASSERT_TRUE(collect.saw_hello);
  ASSERT_TRUE(collect.saw_eos);
  EXPECT_EQ(collect.header.epoch_us, stream.t_begin());
  EXPECT_EQ(collect.header.t_end_us, stream.t_end());
  ASSERT_EQ(collect.events.size(), stream.events().size());
  for (std::size_t i = 0; i < collect.events.size(); ++i) {
    ASSERT_EQ(collect.events[i], stream.events()[i]) << "event " << i;
  }
  const ew::WireRecvStats& rs = receiver.stats();
  EXPECT_TRUE(rs.accounting_ok());
  EXPECT_EQ(rs.rejected_packets, 0u);
  EXPECT_EQ(rs.duplicate_packets, 0u);
}

class WireFaultSession : public ::testing::TestWithParam<ew::NetFaultType> {};

TEST_P(WireFaultSession, SessionRecoversLosslesslyUnderFault) {
  const ew::NetFaultType type = GetParam();
  // 1000 events at 64/packet -> 16 data packets, so every fault site
  // drawn from [0, 8) exists and fires.
  const ee::EventStream stream = ramp_stream(0, 1000, 100);

  ew::NetFaultPlanOptions opts;
  opts.session_id = 1;
  opts.packets_hint = 8;  // faults land on packets that really exist
  switch (type) {
    case ew::NetFaultType::kDrop: opts.drops = 2; break;
    case ew::NetFaultType::kCorrupt: opts.corrupts = 2; break;
    case ew::NetFaultType::kTruncate: opts.truncates = 2; break;
    case ew::NetFaultType::kReorder: opts.reorders = 2; break;
    case ew::NetFaultType::kDelay: opts.delays = 2; break;
    case ew::NetFaultType::kDisconnect: opts.disconnects = 1; break;
  }
  const auto injector = std::make_shared<ew::NetFaultInjector>(
      ew::NetFaultPlan::seeded(99, opts));

  ew::TcpListener listener;
  CollectingSink collect;
  ew::WireReceiverConfig rcfg;
  rcfg.stall_timeout = 2000ms;
  ew::WireReceiver receiver(rcfg, collect.sink());

  ew::WireSenderConfig cfg;
  cfg.events_per_packet = 64;  // ~12+ data packets for this stream
  const std::uint16_t port = listener.port();
  const ew::WireSendStats stats = pump_session(
      stream, cfg,
      [port, injector]() -> std::unique_ptr<ew::Transport> {
        auto inner = ew::TcpTransport::connect(port, 2000ms);
        if (!inner) return nullptr;
        return std::make_unique<ew::NetFaultProxy>(std::move(inner),
                                                   injector);
      },
      listener, receiver);

  // Whatever the fault type, the ARQ layer delivers the byte-exact
  // stream: zero frames lost, zero duplicated into the sink.
  EXPECT_TRUE(stats.completed) << ew::to_string(type);
  ASSERT_TRUE(collect.saw_eos) << ew::to_string(type);
  ASSERT_EQ(collect.events.size(), stream.events().size());
  for (std::size_t i = 0; i < collect.events.size(); ++i) {
    ASSERT_EQ(collect.events[i], stream.events()[i]) << "event " << i;
  }
  EXPECT_TRUE(receiver.stats().accounting_ok());
  EXPECT_GT(injector->counts().total(), 0u) << "fault never fired";
  if (type == ew::NetFaultType::kCorrupt ||
      type == ew::NetFaultType::kTruncate) {
    EXPECT_GT(receiver.stats().rejected_packets, 0u);
  }
  if (type == ew::NetFaultType::kDisconnect) {
    EXPECT_GE(stats.reconnects, 1u);
    EXPECT_GE(receiver.stats().resumes_served, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultTypes, WireFaultSession,
    ::testing::Values(ew::NetFaultType::kDrop, ew::NetFaultType::kCorrupt,
                      ew::NetFaultType::kTruncate,
                      ew::NetFaultType::kReorder, ew::NetFaultType::kDelay,
                      ew::NetFaultType::kDisconnect),
    [](const ::testing::TestParamInfo<ew::NetFaultType>& info) {
      const char* name = ew::to_string(info.param);
      std::string out;
      for (const char* p = name; *p != '\0'; ++p) {
        if (*p != '-') out.push_back(*p);
      }
      return out;
    });

TEST(WireSession, ReconnectResumeAcrossWrapLosesNothing) {
  // Disconnect mid-stream while the timestamps cross the 32-bit wrap:
  // the resume handshake must restart cleanly AND the unwrapper state
  // must carry the 64-bit timeline across the reconnect.
  const std::int64_t wrap = std::int64_t{1} << 32;
  const ee::EventStream stream = ramp_stream(wrap - 6000, 400, 30);
  ASSERT_GT(stream.t_end(), wrap);

  ew::NetFaultPlan plan;
  plan.add({ew::NetFaultType::kDisconnect, 1, 5, 0.0});
  const auto injector = std::make_shared<ew::NetFaultInjector>(plan);

  ew::TcpListener listener;
  CollectingSink collect;
  ew::WireReceiverConfig rcfg;
  rcfg.stall_timeout = 2000ms;
  ew::WireReceiver receiver(rcfg, collect.sink());

  ew::WireSenderConfig cfg;
  cfg.events_per_packet = 32;  // disconnect site seq=5 exists
  const std::uint16_t port = listener.port();
  const ew::WireSendStats stats = pump_session(
      stream, cfg,
      [port, injector]() -> std::unique_ptr<ew::Transport> {
        auto inner = ew::TcpTransport::connect(port, 2000ms);
        if (!inner) return nullptr;
        return std::make_unique<ew::NetFaultProxy>(std::move(inner),
                                                   injector);
      },
      listener, receiver);

  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_EQ(injector->counts().disconnects, 1u);
  ASSERT_TRUE(collect.saw_eos);
  ASSERT_EQ(collect.events.size(), stream.events().size());
  for (std::size_t i = 0; i < collect.events.size(); ++i) {
    ASSERT_EQ(collect.events[i], stream.events()[i]) << "event " << i;
  }
  EXPECT_TRUE(receiver.stats().accounting_ok());
}

TEST(WireSession, StalledPeerDetectedByStallTimeout) {
  auto [a, b] = ew::ShmRingTransport::make_pair();
  CollectingSink collect;
  ew::WireReceiverConfig rcfg;
  rcfg.stall_timeout = 60ms;
  ew::WireReceiver receiver(rcfg, collect.sink());
  // Peer sends nothing at all: serve() must return kStalled, not hang.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(receiver.serve(*b), ew::ServeOutcome::kStalled);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
  (void)a;
}

// ----------------------------------------------------- seeded net plan

TEST(NetFaultPlan, SeededIsReproducibleAndWellShaped) {
  ew::NetFaultPlanOptions opts;
  opts.packets_hint = 32;
  opts.drops = 3;
  opts.corrupts = 2;
  opts.truncates = 2;
  opts.reorders = 2;
  opts.delays = 2;
  opts.disconnects = 1;

  const ew::NetFaultPlan a = ew::NetFaultPlan::seeded(42, opts);
  const ew::NetFaultPlan b = ew::NetFaultPlan::seeded(42, opts);
  const ew::NetFaultPlan c = ew::NetFaultPlan::seeded(43, opts);

  ASSERT_EQ(a.specs.size(), 12u);
  ASSERT_EQ(a.specs.size(), b.specs.size());
  bool identical = true;
  for (std::size_t i = 0; i < a.specs.size(); ++i) {
    EXPECT_EQ(a.specs[i].type, b.specs[i].type);
    EXPECT_EQ(a.specs[i].seq, b.specs[i].seq);
    if (i < c.specs.size() && (a.specs[i].seq != c.specs[i].seq ||
                               a.specs[i].type != c.specs[i].type)) {
      identical = false;
    }
  }
  EXPECT_FALSE(identical) << "different seeds produced identical plans";

  // Sites are drawn without replacement: seqs are unique.
  std::vector<std::uint32_t> seqs;
  for (const ew::NetFaultSpec& s : a.specs) {
    EXPECT_LT(s.seq, opts.packets_hint);
    seqs.push_back(s.seq);
  }
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(std::unique(seqs.begin(), seqs.end()), seqs.end());

  // Over-subscribed plans are an error, not a silent truncation.
  ew::NetFaultPlanOptions over = opts;
  over.packets_hint = 4;
  EXPECT_THROW(ew::NetFaultPlan::seeded(1, over), std::invalid_argument);
}

TEST(NetFaultInjector, SitesFireExactlyOnce) {
  ew::NetFaultPlan plan;
  plan.add({ew::NetFaultType::kDrop, 1, 3, 0.0});
  ew::NetFaultInjector injector(plan);
  EXPECT_EQ(injector.take(1, 3).size(), 1u);
  EXPECT_TRUE(injector.take(1, 3).empty());  // retransmission passes
  EXPECT_TRUE(injector.take(1, 4).empty());
  EXPECT_TRUE(injector.take(2, 3).empty());  // other session untouched
}

// ------------------------------------------------- recorder / replayer

TEST(WireRecorder, RecordDecodeRoundTripIsExact) {
  const ee::EventStream stream = small_stream(500'000, 150'000, 31);
  const std::string path = temp_path("rec");
  ew::record_stream(stream, path, 100);

  ew::StreamReplayer replayer(path);
  EXPECT_EQ(replayer.header().epoch_us, stream.t_begin());
  EXPECT_EQ(replayer.header().t_end_us, stream.t_end());
  EXPECT_EQ(replayer.data_packets(),
            (stream.events().size() + 99) / 100);

  const ee::EventStream decoded = replayer.decode();
  EXPECT_EQ(decoded.geometry(), stream.geometry());
  ASSERT_EQ(decoded.events().size(), stream.events().size());
  for (std::size_t i = 0; i < decoded.events().size(); ++i) {
    ASSERT_EQ(decoded.events()[i], stream.events()[i]) << "event " << i;
  }
  std::remove(path.c_str());
}

TEST(WireRecorder, ReplayerRejectsCorruptRecording) {
  const ee::EventStream stream = small_stream(0, 60'000, 5);
  const std::string path = temp_path("corrupt");
  ew::record_stream(stream, path, 64);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff off =
        static_cast<std::streamoff>(ew::kHeaderBytes + 40);
    f.seekg(off);
    char x = 0;
    f.read(&x, 1);
    x = static_cast<char>(x ^ 0x7F);  // guaranteed different
    f.seekp(off);
    f.write(&x, 1);
  }
  EXPECT_THROW(ew::StreamReplayer{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(WireRecorder, PacedReplayHoldsTheTargetRate) {
  // 100 ms of sensor time at 20x -> ~5 ms wall. Replay into a live
  // receiver and check pacing + byte-exact delivery.
  const ee::EventStream stream = ramp_stream(0, 500, 200);  // 100 ms span
  const std::string path = temp_path("paced");
  ew::record_stream(stream, path, 50);
  ew::StreamReplayer replayer(path);

  auto [tx_end, rx_end] = ew::ShmRingTransport::make_pair(1 << 20);
  CollectingSink collect;
  ew::WireReceiver receiver(ew::WireReceiverConfig{}, collect.sink());
  std::thread rx([&] {
    while (!receiver.eos()) {
      if (receiver.serve(*rx_end) != ew::ServeOutcome::kEndOfStream) break;
    }
  });
  const ew::ReplayStats stats = replayer.replay(*tx_end, 20.0);
  tx_end->close();
  rx.join();
  receiver.finish();

  EXPECT_EQ(stats.packets_sent, replayer.data_packets() + 1);  // + eos
  EXPECT_NEAR(stats.target_ms, 5.0, 0.5);
  EXPECT_GE(stats.wall_ms, stats.target_ms * 0.8);
  ASSERT_EQ(collect.events.size(), stream.events().size());
  EXPECT_TRUE(receiver.stats().accounting_ok());
  std::remove(path.c_str());
}

// -------------------------------------------------------- fault journal

TEST(FaultJournal, AppendReadRoundTrip) {
  const std::string path = temp_path("journal");
  {
    ev::FaultJournal journal(path);
    journal.append("inject", "stream=0 seq=3 action=stall");
    journal.append("quarantine", "stream=1 seq=9 fault=bad action=reject");
    journal.append("weird\nkind", "multi\tline\rdetail");
    EXPECT_EQ(journal.entries_written(), 3u);
  }
  const auto entries = ev::FaultJournal::read(path);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].kind, "inject");
  EXPECT_EQ(entries[0].detail, "stream=0 seq=3 action=stall");
  EXPECT_EQ(entries[1].kind, "quarantine");
  EXPECT_GE(entries[1].t_ms, entries[0].t_ms);
  // Sanitization keeps one incident on one line.
  EXPECT_EQ(entries[2].kind, "weird kind");
  EXPECT_EQ(entries[2].detail, "multi line detail");
  std::remove(path.c_str());
}

TEST(FaultJournal, TornFinalLineIsSkippedNotFatal) {
  const std::string path = temp_path("torn");
  {
    ev::FaultJournal journal(path);
    journal.append("run", "phase=start");
    journal.append("run", "phase=end");
  }
  {  // tear the last line: strip its trailing newline and some bytes
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bytes.resize(bytes.size() - 4);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto entries = ev::FaultJournal::read(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].detail, "phase=start");
  std::remove(path.c_str());
}

// -------------------------------------------- wire serving (run_wire)

TEST(WireServing, RunWireBitMatchesRunSerial) {
  // End-to-end: streams sent through real TCP sessions into the
  // serving runtime must produce outputs bitwise identical to serial
  // in-process execution of the same frames.
  const en::ZooConfig scale{32, 32, 8, 4, 2.0f};
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, scale);

  ev::ServeConfig config;
  config.n_workers = 2;
  config.queue_capacity = 64;
  config.overflow = ev::OverflowPolicy::kBlock;
  config.capture_outputs = true;
  ev::ServingRuntime runtime(spec, 7, config);

  constexpr int kStreams = 2;
  std::vector<ee::EventStream> streams;
  std::vector<std::vector<es::SparseFrame>> frames;
  for (int s = 0; s < kStreams; ++s) {
    streams.push_back(small_stream(0, 200'000, 60 + s, 32, 32));
    frames.push_back(
        ev::ServingRuntime::ingest(streams.back(), config.ingress));
    ASSERT_FALSE(frames.back().empty());
  }

  std::vector<std::unique_ptr<ew::TcpListener>> listeners;
  std::vector<ev::TransportAcceptor> acceptors;
  for (int s = 0; s < kStreams; ++s) {
    listeners.push_back(std::make_unique<ew::TcpListener>());
    ew::TcpListener* l = listeners.back().get();
    acceptors.push_back(
        [l](std::chrono::milliseconds timeout) { return l->accept(timeout); });
  }

  std::vector<std::thread> senders;
  std::vector<ew::WireSendStats> send_stats(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    const std::uint16_t port = listeners[static_cast<std::size_t>(s)]->port();
    senders.emplace_back([&, s, port] {
      ew::WireSenderConfig cfg;
      cfg.session_id = static_cast<std::uint32_t>(s + 1);
      cfg.events_per_packet = 128;
      ew::WireSender sender(streams[static_cast<std::size_t>(s)], cfg, [port] {
        return ew::TcpTransport::connect(port, 2000ms);
      });
      send_stats[static_cast<std::size_t>(s)] = sender.run();
    });
  }

  const ev::ServeReport report = runtime.run_wire(acceptors);
  for (std::thread& t : senders) t.join();

  for (int s = 0; s < kStreams; ++s) {
    EXPECT_TRUE(send_stats[static_cast<std::size_t>(s)].completed)
        << "stream " << s;
  }
  EXPECT_TRUE(report.accounting_ok());
  EXPECT_EQ(report.frames_failed, 0u);
  EXPECT_EQ(report.frames_dropped, 0u);

  const auto serial = runtime.run_serial(frames, true);
  std::size_t expected = 0;
  for (const auto& f : frames) expected += f.size();
  ASSERT_EQ(report.frames_completed, expected);
  for (int s = 0; s < kStreams; ++s) {
    const auto& per_stream = frames[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < per_stream.size(); ++i) {
      const es::DenseTensor* served =
          runtime.output(s, static_cast<std::int64_t>(i));
      ASSERT_NE(served, nullptr) << "stream " << s << " seq " << i;
      EXPECT_EQ(es::max_abs_diff(*served,
                                 serial.outputs[static_cast<std::size_t>(s)]
                                               [i]),
                0.0f)
          << "stream " << s << " seq " << i;
    }
  }
}

TEST(WireServing, JournalRecordsWireRejections) {
  // A corrupt packet through run_wire lands in the journal and in the
  // rejected_packets lane, with the packet partition still exact.
  const en::ZooConfig scale{32, 32, 8, 4, 2.0f};
  const en::NetworkSpec spec =
      en::build_network(en::NetworkId::kDotie, scale);

  const std::string journal_path = temp_path("wire_journal");
  ev::ServeConfig config;
  config.n_workers = 1;
  config.queue_capacity = 64;
  config.journal_path = journal_path;
  ev::ServingRuntime runtime(spec, 7, config);

  const ee::EventStream stream = small_stream(0, 150'000, 77, 32, 32);
  // Pack ~8 data packets regardless of the synthesized event count so
  // the seeded corrupt site (seq < 4) is guaranteed to exist.
  const std::size_t per_packet = std::min(
      ew::kMaxEventsPerPacket,
      std::max<std::size_t>(1, stream.events().size() / 8));

  ew::NetFaultPlanOptions opts;
  opts.packets_hint = 4;
  opts.corrupts = 1;
  const auto injector = std::make_shared<ew::NetFaultInjector>(
      ew::NetFaultPlan::seeded(5, opts));

  ew::TcpListener listener;
  ew::TcpListener* l = &listener;
  const ev::TransportAcceptor acceptor =
      [l](std::chrono::milliseconds timeout) { return l->accept(timeout); };

  const std::uint16_t port = listener.port();
  std::thread tx([&] {
    ew::WireSenderConfig cfg;
    cfg.events_per_packet = per_packet;
    ew::WireSender sender(stream, cfg,
                          [port, injector]() -> std::unique_ptr<ew::Transport> {
                            auto inner =
                                ew::TcpTransport::connect(port, 2000ms);
                            if (!inner) return nullptr;
                            return std::make_unique<ew::NetFaultProxy>(
                                std::move(inner), injector);
                          });
    (void)sender.run();
  });

  const ev::ServeReport report =
      runtime.run_wire(std::span<const ev::TransportAcceptor>(&acceptor, 1));
  tx.join();

  EXPECT_TRUE(report.accounting_ok());
  EXPECT_GE(report.rejected_packets, 1u);
  const auto entries = ev::FaultJournal::read(journal_path);
  bool saw_wire_reject = false;
  for (const auto& e : entries) {
    if (e.kind == "wire-reject") saw_wire_reject = true;
  }
  EXPECT_TRUE(saw_wire_reject);
  std::remove(journal_path.c_str());
}
